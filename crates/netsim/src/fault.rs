//! Composable, deterministic fault injection.
//!
//! A [`FaultPlan`] is a time-sorted schedule of [`FaultEvent`]s applied
//! by the [`Simulator`](crate::sim::Simulator) as virtual time passes:
//! node crashes and reboots (RAM state is lost; protocols recover what
//! their flash model retains), link churn (links flap down and up with
//! configurable sojourn times), asymmetric per-direction degradation,
//! and per-node clock drift.
//!
//! Plans are either hand-built through the push helpers or generated
//! from a [`FaultConfig`] with [`FaultPlan::generate`], which draws
//! every decision from its own `DetRng` stream. The fault layer never
//! touches the medium's or the nodes' RNGs, so an *empty* plan leaves a
//! run bit-identical to one with no fault layer at all, and any plan is
//! reproducible from `(config, topology, seed)`.
//!
//! Every event serializes to a single JSON object in the same shape as
//! a [`TraceEvent`](crate::trace::TraceEvent) line, and a whole plan
//! round-trips through [`FaultPlan::to_jsonl`] /
//! [`FaultPlan::from_jsonl`]. Replaying a parsed plan reproduces the
//! original run exactly; `tests/properties.rs` pins this.

use crate::node::NodeId;
use crate::time::{Duration, SimTime};
use crate::topology::Topology;
use lrs_rng::DetRng;

/// Parts-per-million fixed point: the identity scale factor.
pub const PPM_ONE: u32 = 1_000_000;

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Node halts: no transmission, reception, or timer activity.
    Crash {
        /// The crashing node.
        node: NodeId,
        /// Crash time.
        at: SimTime,
    },
    /// A crashed node restarts. Its RAM state is lost; the protocol's
    /// reboot hook decides what the flash model restores.
    Reboot {
        /// The restarting node.
        node: NodeId,
        /// Restart time.
        at: SimTime,
    },
    /// The directed link `from → to` stops delivering entirely.
    LinkDown {
        /// Transmitter side.
        from: NodeId,
        /// Receiver side.
        to: NodeId,
        /// Outage start.
        at: SimTime,
    },
    /// The directed link `from → to` recovers (degradation, if any,
    /// still applies).
    LinkUp {
        /// Transmitter side.
        from: NodeId,
        /// Receiver side.
        to: NodeId,
        /// Recovery time.
        at: SimTime,
    },
    /// The directed link `from → to` keeps only `ppm`/1e6 of its
    /// deliveries from now on. Applying it to one direction only models
    /// an asymmetric link.
    Degrade {
        /// Transmitter side.
        from: NodeId,
        /// Receiver side.
        to: NodeId,
        /// Delivery scale factor in parts per million ([`PPM_ONE`] = no
        /// degradation).
        ppm: u32,
        /// When the degradation starts.
        at: SimTime,
    },
    /// The node's local clock runs at `ppm`/1e6 of nominal speed from
    /// now on: every timer it arms is stretched (ppm > 1e6) or
    /// compressed (ppm < 1e6) by that factor.
    ClockDrift {
        /// The drifting node.
        node: NodeId,
        /// Clock rate in parts per million of nominal ([`PPM_ONE`] =
        /// perfect clock).
        ppm: u32,
        /// When the drift takes effect.
        at: SimTime,
    },
}

impl FaultEvent {
    /// The event's scheduled time.
    pub fn at(&self) -> SimTime {
        match *self {
            FaultEvent::Crash { at, .. }
            | FaultEvent::Reboot { at, .. }
            | FaultEvent::LinkDown { at, .. }
            | FaultEvent::LinkUp { at, .. }
            | FaultEvent::Degrade { at, .. }
            | FaultEvent::ClockDrift { at, .. } => at,
        }
    }

    /// The node whose shard must apply the event: the faulted node for
    /// node-scoped faults, the *receiver* for link-scoped faults (link
    /// state is consulted on delivery, which runs on the receiver's
    /// shard).
    pub fn owner(&self) -> NodeId {
        match *self {
            FaultEvent::Crash { node, .. }
            | FaultEvent::Reboot { node, .. }
            | FaultEvent::ClockDrift { node, .. } => node,
            FaultEvent::LinkDown { to, .. }
            | FaultEvent::LinkUp { to, .. }
            | FaultEvent::Degrade { to, .. } => to,
        }
    }

    /// Renders the event as one JSON object in trace-event shape
    /// (`"t"` in microseconds of virtual time).
    pub fn to_json(&self) -> String {
        match *self {
            FaultEvent::Crash { node, at } => format!(
                r#"{{"t":{},"ev":"fault_crash","node":{}}}"#,
                at.as_micros(),
                node.0
            ),
            FaultEvent::Reboot { node, at } => format!(
                r#"{{"t":{},"ev":"fault_reboot","node":{}}}"#,
                at.as_micros(),
                node.0
            ),
            FaultEvent::LinkDown { from, to, at } => format!(
                r#"{{"t":{},"ev":"fault_link_down","from":{},"to":{}}}"#,
                at.as_micros(),
                from.0,
                to.0
            ),
            FaultEvent::LinkUp { from, to, at } => format!(
                r#"{{"t":{},"ev":"fault_link_up","from":{},"to":{}}}"#,
                at.as_micros(),
                from.0,
                to.0
            ),
            FaultEvent::Degrade { from, to, ppm, at } => format!(
                r#"{{"t":{},"ev":"fault_degrade","from":{},"to":{},"ppm":{}}}"#,
                at.as_micros(),
                from.0,
                to.0,
                ppm
            ),
            FaultEvent::ClockDrift { node, ppm, at } => format!(
                r#"{{"t":{},"ev":"fault_drift","node":{},"ppm":{}}}"#,
                at.as_micros(),
                node.0,
                ppm
            ),
        }
    }

    /// Parses one event from its [`to_json`](Self::to_json) form.
    /// Returns `None` on any malformed or unknown input.
    pub fn from_json(line: &str) -> Option<Self> {
        let ev = json_str_field(line, "ev")?;
        let at = SimTime(json_u64_field(line, "t")?);
        let node = || json_u64_field(line, "node").map(|n| NodeId(n as u32));
        let from = || json_u64_field(line, "from").map(|n| NodeId(n as u32));
        let to = || json_u64_field(line, "to").map(|n| NodeId(n as u32));
        let ppm = || json_u64_field(line, "ppm").map(|p| p as u32);
        Some(match ev {
            "fault_crash" => FaultEvent::Crash { node: node()?, at },
            "fault_reboot" => FaultEvent::Reboot { node: node()?, at },
            "fault_link_down" => FaultEvent::LinkDown {
                from: from()?,
                to: to()?,
                at,
            },
            "fault_link_up" => FaultEvent::LinkUp {
                from: from()?,
                to: to()?,
                at,
            },
            "fault_degrade" => FaultEvent::Degrade {
                from: from()?,
                to: to()?,
                ppm: ppm()?,
                at,
            },
            "fault_drift" => FaultEvent::ClockDrift {
                node: node()?,
                ppm: ppm()?,
                at,
            },
            _ => return None,
        })
    }
}

/// Extracts the numeric value of `"key":<digits>` from a flat JSON object.
pub(crate) fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Extracts the string value of `"key":"<value>"` from a flat JSON object.
pub(crate) fn json_str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Knobs for [`FaultPlan::generate`]. Rates are per-horizon
/// probabilities; all sampling is driven by the seed passed to
/// `generate`, never by wall-clock state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Probability that each eligible node crashes once in the horizon.
    pub crash_rate: f64,
    /// Downtime range for crashed nodes; `None` makes crashes permanent.
    pub reboot_after: Option<(Duration, Duration)>,
    /// Fraction of directed links that flap down/up for the whole horizon.
    pub link_flap_rate: f64,
    /// Mean outage length of a flapping link.
    pub down_sojourn: Duration,
    /// Mean healthy stretch of a flapping link.
    pub up_sojourn: Duration,
    /// Fraction of directed links that are permanently degraded
    /// (asymmetric: each direction is drawn independently).
    pub degrade_rate: f64,
    /// Degradation factor range in ppm (applied per delivery).
    pub degrade_ppm: (u32, u32),
    /// Maximum absolute clock-drift deviation in ppm; each node draws a
    /// rate uniformly from `[PPM_ONE - d, PPM_ONE + d]` at time zero.
    pub drift_ppm: u32,
    /// Time window faults are scheduled within.
    pub horizon: Duration,
    /// Node ids below this never crash (protects the base station).
    pub protect_first: u32,
}

impl Default for FaultConfig {
    /// A quiet config: no faults, one protected base node, a one-hour
    /// horizon.
    fn default() -> Self {
        FaultConfig {
            crash_rate: 0.0,
            reboot_after: None,
            link_flap_rate: 0.0,
            down_sojourn: Duration::from_secs(30),
            up_sojourn: Duration::from_secs(120),
            degrade_rate: 0.0,
            degrade_ppm: (300_000, 800_000),
            drift_ppm: 0,
            horizon: Duration::from_secs(3600),
            protect_first: 1,
        }
    }
}

/// A deterministic, time-sorted fault schedule.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Appends one event (kept sorted by time, stable for ties).
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
        self.events.sort_by_key(FaultEvent::at);
    }

    /// Schedules a permanent crash.
    pub fn crash(&mut self, node: NodeId, at: SimTime) {
        self.push(FaultEvent::Crash { node, at });
    }

    /// Schedules a crash followed by a reboot after `downtime`.
    pub fn crash_and_reboot(&mut self, node: NodeId, at: SimTime, downtime: Duration) {
        self.push(FaultEvent::Crash { node, at });
        self.push(FaultEvent::Reboot {
            node,
            at: at + downtime,
        });
    }

    /// Schedules a directed-link outage over `[at, at + outage)`.
    pub fn link_outage(&mut self, from: NodeId, to: NodeId, at: SimTime, outage: Duration) {
        self.push(FaultEvent::LinkDown { from, to, at });
        self.push(FaultEvent::LinkUp {
            from,
            to,
            at: at + outage,
        });
    }

    /// Schedules a permanent directed-link degradation.
    pub fn degrade(&mut self, from: NodeId, to: NodeId, ppm: u32, at: SimTime) {
        self.push(FaultEvent::Degrade { from, to, ppm, at });
    }

    /// Sets a node's clock rate from `at` onward.
    pub fn clock_drift(&mut self, node: NodeId, ppm: u32, at: SimTime) {
        self.push(FaultEvent::ClockDrift { node, ppm, at });
    }

    /// The scheduled events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a schedule from `config` for `topology`, drawing every
    /// decision from a `DetRng` seeded with `seed`. Same inputs, same
    /// plan — byte for byte.
    pub fn generate(config: &FaultConfig, topology: &Topology, seed: u64) -> Self {
        let mut rng = DetRng::seed_from_u64(seed ^ 0x00FA_B17F_A017_u64);
        let mut plan = FaultPlan::new();
        let horizon_us = config.horizon.as_micros().max(1);

        // Node crashes (optionally followed by reboots).
        for i in config.protect_first..topology.len() as u32 {
            if config.crash_rate > 0.0 && rng.gen_bool(config.crash_rate) {
                let at = SimTime(rng.gen_range(0..horizon_us));
                match config.reboot_after {
                    Some((lo, hi)) => {
                        let down = sample_range_us(&mut rng, lo, hi);
                        plan.crash_and_reboot(NodeId(i), at, Duration::from_micros(down));
                    }
                    None => plan.crash(NodeId(i), at),
                }
            }
        }

        // Per-node clock drift, fixed at time zero.
        if config.drift_ppm > 0 {
            for i in 0..topology.len() as u32 {
                let d = rng.gen_range(0..=2 * config.drift_ppm as u64) as u32;
                let ppm = PPM_ONE - config.drift_ppm + d;
                if ppm != PPM_ONE {
                    plan.clock_drift(NodeId(i), ppm, SimTime::ZERO);
                }
            }
        }

        // Link churn and degradation over every directed link.
        for from in 0..topology.len() as u32 {
            for link in topology.links_from(NodeId(from)) {
                let to = link.to;
                if config.degrade_rate > 0.0 && rng.gen_bool(config.degrade_rate) {
                    let (lo, hi) = config.degrade_ppm;
                    let ppm = rng.gen_range(u64::from(lo)..=u64::from(hi.max(lo))) as u32;
                    plan.degrade(NodeId(from), to, ppm, SimTime::ZERO);
                }
                if config.link_flap_rate > 0.0 && rng.gen_bool(config.link_flap_rate) {
                    // Alternate up/down sojourns across the horizon;
                    // sojourns are uniform in [mean/2, 3·mean/2].
                    let mut t = sample_sojourn_us(&mut rng, config.up_sojourn);
                    while t < horizon_us {
                        let down = sample_sojourn_us(&mut rng, config.down_sojourn);
                        plan.link_outage(NodeId(from), to, SimTime(t), Duration::from_micros(down));
                        t += down + sample_sojourn_us(&mut rng, config.up_sojourn);
                    }
                }
            }
        }
        plan
    }

    /// Serializes the plan to JSON Lines (one event per line), its
    /// trace-event form.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }

    /// Parses a plan back from [`to_jsonl`](Self::to_jsonl) output.
    /// Returns `None` if any non-blank line fails to parse.
    pub fn from_jsonl(text: &str) -> Option<Self> {
        let mut plan = FaultPlan::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            plan.push(FaultEvent::from_json(line)?);
        }
        Some(plan)
    }
}

/// Uniform draw from `[lo, hi]` in microseconds (handles `hi < lo`).
fn sample_range_us(rng: &mut DetRng, lo: Duration, hi: Duration) -> u64 {
    let (a, b) = (lo.as_micros(), hi.as_micros().max(lo.as_micros()));
    rng.gen_range(a..=b)
}

/// Sojourn draw: uniform in `[mean/2, 3·mean/2]`, floor 1 µs.
fn sample_sojourn_us(rng: &mut DetRng, mean: Duration) -> u64 {
    let m = mean.as_micros().max(2);
    rng.gen_range(m / 2..=m + m / 2).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_config() -> FaultConfig {
        FaultConfig {
            crash_rate: 0.5,
            reboot_after: Some((Duration::from_secs(5), Duration::from_secs(50))),
            link_flap_rate: 0.4,
            degrade_rate: 0.3,
            drift_ppm: 50_000,
            horizon: Duration::from_secs(600),
            ..FaultConfig::default()
        }
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        let events = [
            FaultEvent::Crash {
                node: NodeId(3),
                at: SimTime(17),
            },
            FaultEvent::Reboot {
                node: NodeId(3),
                at: SimTime(1_000_017),
            },
            FaultEvent::LinkDown {
                from: NodeId(1),
                to: NodeId(2),
                at: SimTime(0),
            },
            FaultEvent::LinkUp {
                from: NodeId(1),
                to: NodeId(2),
                at: SimTime(99),
            },
            FaultEvent::Degrade {
                from: NodeId(4),
                to: NodeId(0),
                ppm: 420_000,
                at: SimTime(5),
            },
            FaultEvent::ClockDrift {
                node: NodeId(7),
                ppm: 1_030_000,
                at: SimTime::ZERO,
            },
        ];
        for event in events {
            let json = event.to_json();
            assert_eq!(FaultEvent::from_json(&json), Some(event), "{json}");
        }
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert_eq!(FaultEvent::from_json(r#"{"t":5,"ev":"tx","node":1}"#), None);
        assert_eq!(FaultEvent::from_json(r#"{"t":5,"ev":"fault_crash"}"#), None);
        assert_eq!(FaultEvent::from_json("not json"), None);
        assert!(FaultPlan::from_jsonl("{}\n").is_none());
    }

    #[test]
    fn generate_is_deterministic_and_sorted() {
        let topo = Topology::grid(4, 10.0, 7);
        let cfg = busy_config();
        let a = FaultPlan::generate(&cfg, &topo, 42);
        let b = FaultPlan::generate(&cfg, &topo, 42);
        let c = FaultPlan::generate(&cfg, &topo, 43);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should differ for a busy config");
        assert!(!a.is_empty());
        assert!(a.events().windows(2).all(|w| w[0].at() <= w[1].at()));
    }

    #[test]
    fn generate_respects_protection_and_horizon() {
        let cfg = FaultConfig {
            crash_rate: 1.0,
            reboot_after: None,
            horizon: Duration::from_secs(100),
            protect_first: 2,
            ..FaultConfig::default()
        };
        let topo = Topology::star(6);
        let plan = FaultPlan::generate(&cfg, &topo, 9);
        let mut crashed: Vec<u32> = plan
            .events()
            .iter()
            .map(|e| match *e {
                FaultEvent::Crash { node, at } => {
                    assert!(at.as_micros() < 100_000_000);
                    node.0
                }
                ref other => panic!("unexpected event {other:?}"),
            })
            .collect();
        crashed.sort_unstable();
        assert_eq!(crashed, vec![2, 3, 4, 5]);
    }

    #[test]
    fn plan_jsonl_round_trip_is_exact() {
        let topo = Topology::grid(3, 10.0, 1);
        let plan = FaultPlan::generate(&busy_config(), &topo, 5);
        let text = plan.to_jsonl();
        let parsed = FaultPlan::from_jsonl(&text).expect("parse");
        assert_eq!(plan, parsed);
        assert_eq!(parsed.to_jsonl(), text);
    }

    #[test]
    fn push_keeps_events_sorted() {
        let mut plan = FaultPlan::new();
        plan.crash(NodeId(1), SimTime(500));
        plan.crash_and_reboot(NodeId(2), SimTime(100), Duration::from_micros(50));
        let times: Vec<u64> = plan.events().iter().map(|e| e.at().as_micros()).collect();
        assert_eq!(times, vec![100, 150, 500]);
    }
}

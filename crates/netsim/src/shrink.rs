//! Scenario minimization by delta debugging.
//!
//! A chaos sweep that finds a failure usually finds it under a fault
//! plan with dozens of events, almost all of which are noise. [`ddmin`]
//! implements Zeller-style delta debugging over any cloneable item
//! list; [`shrink_fault_plan`] applies it to a [`FaultPlan`], reducing
//! a failing schedule to a 1-minimal subset that still fails — the
//! minimal reproducer a bug report should carry.
//!
//! The oracle closure decides what "fails" means: typically "replaying
//! the capsule with this candidate plan still ends in the same
//! `Outcome`". Because both engines are deterministic, the oracle is a
//! pure function of its input and the shrink result is reproducible.

use crate::fault::{FaultEvent, FaultPlan};

/// Statistics from a shrink run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Item count before shrinking.
    pub from: usize,
    /// Item count after shrinking.
    pub to: usize,
    /// How many times the oracle was invoked.
    pub oracle_calls: usize,
}

/// Minimizes `items` to a 1-minimal failing subset under `fails`.
///
/// `fails(subset)` must return `true` when the subset still reproduces
/// the failure. Subsets preserve the original item order. If the full
/// set does not fail, it is returned unchanged (there is nothing to
/// minimize toward).
pub fn ddmin<T: Clone>(items: &[T], mut fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut current: Vec<T> = items.to_vec();
    if current.is_empty() || !fails(&current) {
        return current;
    }
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let len = current.len();
        let chunk = len.div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < len {
            let end = (start + chunk).min(len);
            let subset: Vec<T> = current[start..end].to_vec();
            if subset.len() < len && fails(&subset) {
                // Failure isolated inside one chunk: restart there at
                // the coarsest granularity.
                current = subset;
                granularity = 2;
                reduced = true;
                break;
            }
            let mut complement: Vec<T> = current[..start].to_vec();
            complement.extend_from_slice(&current[end..]);
            if !complement.is_empty() && complement.len() < len && fails(&complement) {
                // The chunk was irrelevant: drop it and keep carving
                // the remainder at one granularity step coarser.
                current = complement;
                granularity = (granularity - 1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if granularity >= len {
                break;
            }
            granularity = (granularity * 2).min(len);
        }
    }
    current
}

/// Delta-debugs a failing fault plan down to a minimal subset that
/// still fails, preserving event order. Returns the shrunk plan and
/// shrink statistics.
pub fn shrink_fault_plan(
    plan: &FaultPlan,
    mut fails: impl FnMut(&FaultPlan) -> bool,
) -> (FaultPlan, ShrinkStats) {
    let mut oracle_calls = 0usize;
    let minimal = ddmin(plan.events(), |events| {
        oracle_calls += 1;
        fails(&plan_from(events))
    });
    let stats = ShrinkStats {
        from: plan.len(),
        to: minimal.len(),
        oracle_calls,
    };
    (plan_from(&minimal), stats)
}

fn plan_from(events: &[FaultEvent]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for event in events {
        plan.push(*event);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::time::SimTime;

    #[test]
    fn ddmin_isolates_a_single_culprit() {
        // Failure iff the set contains 13; 40 decoys.
        let items: Vec<u32> = (0..41).collect();
        let minimal = ddmin(&items, |subset| subset.contains(&13));
        assert_eq!(minimal, vec![13]);
    }

    #[test]
    fn ddmin_finds_a_two_element_interaction() {
        // Failure needs BOTH 3 and 29 — the case that defeats naive
        // one-at-a-time removal.
        let items: Vec<u32> = (0..32).collect();
        let minimal = ddmin(&items, |subset| subset.contains(&3) && subset.contains(&29));
        assert_eq!(minimal, vec![3, 29]);
    }

    #[test]
    fn ddmin_preserves_order() {
        let items = vec![5u32, 1, 9, 2, 7];
        let minimal = ddmin(&items, |subset| subset.contains(&9) && subset.contains(&7));
        assert_eq!(minimal, vec![9, 7]);
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let items = vec![1u32, 2, 3];
        assert_eq!(ddmin(&items, |_| false), items);
        assert!(ddmin(&Vec::<u32>::new(), |_| true).is_empty());
    }

    #[test]
    fn fault_plan_shrink_reports_stats() {
        let mut plan = FaultPlan::new();
        for i in 0..20u32 {
            plan.crash(NodeId(i), SimTime(u64::from(i) * 1_000));
        }
        // Only the crash of node 13 matters.
        let (shrunk, stats) = shrink_fault_plan(&plan, |candidate| {
            candidate
                .events()
                .iter()
                .any(|e| matches!(e, FaultEvent::Crash { node, .. } if *node == NodeId(13)))
        });
        assert_eq!(shrunk.len(), 1);
        assert_eq!(stats.from, 20);
        assert_eq!(stats.to, 1);
        assert!(stats.oracle_calls > 1);
    }
}

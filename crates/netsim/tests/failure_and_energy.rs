//! Simulator-level semantics of crash-failure injection and the energy
//! ledger, using a minimal protocol.

use lrs_netsim::energy::EnergyModel;
use lrs_netsim::node::{Context, NodeId, PacketKind, Protocol, TimerId};
use lrs_netsim::sim::Simulator;

use lrs_netsim::time::{Duration, SimTime};
use lrs_netsim::topology::Topology;
use lrs_netsim::SimBuilder;

/// Node 0 beacons every 100 ms; others count beacons.
struct Beacon {
    source: bool,
    heard: u32,
}

impl Protocol for Beacon {
    fn on_init(&mut self, ctx: &mut Context<'_>) {
        if self.source {
            ctx.set_timer(TimerId(0), Duration::from_millis(100));
        }
    }
    fn on_packet(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _data: &[u8]) {
        self.heard += 1;
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerId) {
        ctx.broadcast(PacketKind::Data, vec![0u8; 16]);
        ctx.set_timer(TimerId(0), Duration::from_millis(100));
    }
    fn is_complete(&self) -> bool {
        false
    }
}

fn beacon_sim(seed: u64) -> Simulator<Beacon> {
    SimBuilder::new(Topology::star(3), seed, |id| Beacon {
        source: id == NodeId(0),
        heard: 0,
    })
    .build()
}

#[test]
fn failed_source_stops_transmitting() {
    let mut sim = beacon_sim(1);
    sim.schedule_failure(NodeId(0), SimTime(1_050_000)); // after ~10 beacons
    let _ = sim.run(Duration::from_secs(10));
    assert!(sim.is_failed(NodeId(0)));
    let heard = sim.node(NodeId(1)).heard;
    assert!(
        (8..=11).contains(&heard),
        "source must stop at failure: heard {heard}"
    );
}

#[test]
fn failed_receiver_neither_hears_nor_pays_energy() {
    let mut sim = beacon_sim(2);
    sim.schedule_failure(NodeId(2), SimTime(1)); // dead from the start
    let _ = sim.run(Duration::from_secs(5));
    assert_eq!(sim.node(NodeId(2)).heard, 0);
    assert_eq!(sim.energy().rx_bytes(NodeId(2)), 0);
    // The live receiver heard ~50 beacons and paid for them.
    assert!(sim.node(NodeId(1)).heard >= 45);
    assert!(sim.energy().rx_bytes(NodeId(1)) > 0);
}

#[test]
fn energy_split_matches_byte_counters() {
    let mut sim = beacon_sim(3);
    let _ = sim.run(Duration::from_secs(3));
    let model = EnergyModel::default();
    let tx = sim.energy().tx_bytes(NodeId(0));
    let rx = sim.energy().rx_bytes(NodeId(1));
    assert!(tx > 0 && rx > 0);
    let expect = tx as f64 * model.tx_j_per_byte;
    assert!((sim.energy().joules(NodeId(0), &model) - expect).abs() < 1e-12);
    // Two perfect-link receivers: rx bytes equal 2x tx bytes except for
    // packets still in flight when the deadline stops the run.
    let rx_total = sim.energy().rx_bytes(NodeId(1)) + sim.energy().rx_bytes(NodeId(2));
    assert!(rx_total <= 2 * tx);
    assert!(
        rx_total + 2 * 16 * 2 >= 2 * tx,
        "rx {rx_total} vs 2tx {}",
        2 * tx
    );
}

//! Shard-count independence of the parallel engine, exercised with a
//! self-clocking gossip flood on spatial grids.

use lrs_netsim::fault::FaultPlan;
use lrs_netsim::node::{Context, NodeId, PacketKind, Protocol, TimerId};
use lrs_netsim::sim::Outcome;
use lrs_netsim::time::{Duration, SimTime};
use lrs_netsim::topology::Topology;
use lrs_netsim::{ShardedRun, SimBuilder};

/// Node 0 seeds a payload; every node rebroadcasts it on a jittered
/// timer until the whole network has heard it.
struct Gossip {
    heard: bool,
    relayed: u32,
}

const RETX: TimerId = TimerId(7);

impl Gossip {
    fn arm(ctx: &mut Context<'_>) {
        let jitter = ctx.rng().gen_range(0..150_000u64);
        ctx.set_timer(RETX, Duration::from_micros(200_000 + jitter));
    }
}

impl Protocol for Gossip {
    fn on_init(&mut self, ctx: &mut Context<'_>) {
        if ctx.id == NodeId(0) {
            self.heard = true;
            Gossip::arm(ctx);
        }
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, _from: NodeId, _data: &[u8]) {
        if !self.heard {
            self.heard = true;
            Gossip::arm(ctx);
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerId) {
        ctx.broadcast(PacketKind::Data, vec![0xAB; 32]);
        self.relayed += 1;
        Gossip::arm(ctx);
    }
    fn is_complete(&self) -> bool {
        self.heard
    }
    fn progress(&self) -> u64 {
        u64::from(self.heard)
    }
}

fn run_gossip(seed: u64, shards: usize, faults: FaultPlan) -> ShardedRun<(bool, u32)> {
    SimBuilder::new(Topology::grid(6, 10.0, 11), seed, |_| Gossip {
        heard: false,
        relayed: 0,
    })
    .faults(faults)
    .shards(shards)
    .collect_trace(true)
    .run_sharded(Duration::from_secs(120), |_, g| (g.heard, g.relayed))
}

#[test]
fn gossip_floods_the_grid() {
    let run = run_gossip(42, 2, FaultPlan::new());
    assert_eq!(run.report.outcome, Outcome::Complete);
    assert!(run.report.all_complete);
    assert!(run.harvest.iter().all(|(heard, _)| *heard));
    assert_eq!(run.metrics.completed_count(), 36);
    assert!(run.report.latency.is_some());
    assert!(!run.trace.is_empty());
}

#[test]
fn results_identical_across_shard_counts() {
    let baseline = run_gossip(7, 1, FaultPlan::new());
    for shards in [2, 4, 8] {
        let run = run_gossip(7, shards, FaultPlan::new());
        assert_eq!(run.shards, shards);
        assert_eq!(
            run.report.outcome, baseline.report.outcome,
            "outcome @ {shards} shards"
        );
        assert_eq!(
            run.report.final_time, baseline.report.final_time,
            "final time @ {shards} shards"
        );
        assert_eq!(run.metrics, baseline.metrics, "metrics @ {shards} shards");
        assert_eq!(run.energy, baseline.energy, "energy @ {shards} shards");
        assert_eq!(run.harvest, baseline.harvest, "harvest @ {shards} shards");
        assert_eq!(run.trace, baseline.trace, "trace @ {shards} shards");
    }
}

#[test]
fn seeds_differ() {
    let a = run_gossip(1, 2, FaultPlan::new());
    let b = run_gossip(2, 2, FaultPlan::new());
    assert_ne!(a.trace, b.trace, "different seeds must diverge");
}

#[test]
fn faults_apply_identically_across_shard_counts() {
    // Crash one node mid-flood in each far corner of the grid (distinct
    // shards at every multi-shard count) and reboot one of them later.
    let mut plan = FaultPlan::new();
    plan.crash(NodeId(5), SimTime(150_000));
    plan.crash_and_reboot(
        NodeId(30),
        SimTime(150_000),
        Duration::from_micros(1_850_000),
    );
    let baseline = run_gossip(3, 1, plan.clone());
    assert_eq!(baseline.report.outcome, Outcome::Complete);
    // Node 5 stays down (completion waived); node 30 reboots and must
    // re-hear the payload.
    assert!(!baseline.harvest[5].0);
    assert!(baseline.harvest[30].0);
    assert_eq!(baseline.metrics.completed_count(), 35);
    for shards in [2, 4, 8] {
        let run = run_gossip(3, shards, plan.clone());
        assert_eq!(run.metrics, baseline.metrics, "metrics @ {shards} shards");
        assert_eq!(run.harvest, baseline.harvest, "harvest @ {shards} shards");
        assert_eq!(run.trace, baseline.trace, "trace @ {shards} shards");
    }
}

#[test]
fn crash_inside_lookahead_window_with_inflight_deliveries_is_graceful() {
    // Regression companion for the pruned-transmission panic: crash a
    // mid-grid relay at a time strictly inside a lookahead window (the
    // default window is 2 ms; 151 ms is mid-window) while the flood is
    // in full swing, so deliveries to and from it are already queued —
    // including across shard boundaries. The run must stay panic-free
    // and shard-count independent.
    let mut plan = FaultPlan::new();
    plan.crash(NodeId(17), SimTime(151_000));
    let baseline = run_gossip(11, 1, plan.clone());
    assert_eq!(baseline.report.outcome, Outcome::Complete);
    for shards in [2, 4, 8] {
        let run = run_gossip(11, shards, plan.clone());
        assert_eq!(
            run.report.outcome, baseline.report.outcome,
            "outcome @ {shards} shards"
        );
        assert_eq!(run.metrics, baseline.metrics, "metrics @ {shards} shards");
        assert_eq!(run.trace, baseline.trace, "trace @ {shards} shards");
    }
}

/// Gossip wrapper that panics deliberately inside a protocol callback,
/// for the worker-panic regression tests.
struct PanicBomb {
    inner: Gossip,
}

impl Protocol for PanicBomb {
    fn on_init(&mut self, ctx: &mut Context<'_>) {
        self.inner.on_init(ctx);
    }
    fn on_packet(&mut self, ctx: &mut Context<'_>, from: NodeId, data: &[u8]) {
        self.inner.on_packet(ctx, from, data);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, t: TimerId) {
        if ctx.id == NodeId(21) && self.inner.relayed >= 1 {
            panic!("fuse blown on node 21");
        }
        self.inner.on_timer(ctx, t);
    }
    fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }
    fn progress(&self) -> u64 {
        self.inner.progress()
    }
}

#[test]
fn worker_panic_surfaces_original_message_not_poisoned_mutexes() {
    // Before the fix, a panic in one shard worker poisoned the shared
    // mutexes and the caller died with "control poisoned" — the
    // original message lost. Now the run must finish with a structured
    // WorkerPanicked outcome carrying the root-cause panic text.
    let run = SimBuilder::new(Topology::grid(6, 10.0, 11), 5, |_| PanicBomb {
        inner: Gossip {
            heard: false,
            relayed: 0,
        },
    })
    .shards(4)
    .run_sharded(Duration::from_secs(120), |_, g| g.inner.heard);
    assert_eq!(run.report.outcome, Outcome::WorkerPanicked);
    let dump = run
        .report
        .diagnostic
        .expect("worker panic must carry a diagnostic dump");
    assert!(
        dump.reason.contains("fuse blown on node 21"),
        "dump reason should carry the original panic message, got: {}",
        dump.reason
    );
    // The node mid-callback when the panic hit cannot be harvested;
    // everyone else can.
    assert!(run.harvest.len() >= 35);
}

#[test]
fn worker_panic_outcome_is_shard_count_independent() {
    for shards in [1, 2, 8] {
        let run = SimBuilder::new(Topology::grid(6, 10.0, 11), 5, |_| PanicBomb {
            inner: Gossip {
                heard: false,
                relayed: 0,
            },
        })
        .shards(shards)
        .run_sharded(Duration::from_secs(120), |_, g| g.inner.heard);
        assert_eq!(
            run.report.outcome,
            Outcome::WorkerPanicked,
            "@ {shards} shards"
        );
    }
}

#[test]
fn timeout_is_shard_count_independent() {
    let deadline = Duration::from_millis(350);
    let run1 = SimBuilder::new(Topology::grid(6, 10.0, 11), 9, |_| Gossip {
        heard: false,
        relayed: 0,
    })
    .shards(1)
    .run_sharded(deadline, |_, g| g.heard);
    let run4 = SimBuilder::new(Topology::grid(6, 10.0, 11), 9, |_| Gossip {
        heard: false,
        relayed: 0,
    })
    .shards(4)
    .run_sharded(deadline, |_, g| g.heard);
    assert_eq!(run1.report.outcome, Outcome::TimedOut);
    assert_eq!(run4.report.outcome, Outcome::TimedOut);
    assert_eq!(run1.report.final_time, run4.report.final_time);
    assert_eq!(run1.metrics, run4.metrics);
    assert_eq!(run1.harvest, run4.harvest);
}

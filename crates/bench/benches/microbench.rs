//! Criterion microbenchmarks for the primitives every packet exercises:
//! hashing, erasure coding, Merkle verification, signature verification
//! and the TX scheduler. These quantify the per-packet computation
//! overhead discussed in the paper's §V-B.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use lr_seluge::GreedyRoundRobinPolicy;
use lrs_crypto::merkle::MerkleTree;
use lrs_crypto::schnorr::Keypair;
use lrs_crypto::sha256::sha256;
use lrs_deluge::policy::{TxPolicy, UnionPolicy};
use lrs_deluge::wire::BitVec;
use lrs_erasure::{ErasureCode, ReedSolomon};
use lrs_netsim::node::NodeId;
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [72usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| {
            b.iter(|| sha256(black_box(&data)))
        });
    }
    g.finish();
}

fn bench_reed_solomon(c: &mut Criterion) {
    let mut g = c.benchmark_group("reed_solomon");
    // The paper's page shape: k = 32, n = 48, 72-byte blocks.
    let code = ReedSolomon::new(32, 48).unwrap();
    let blocks: Vec<Vec<u8>> = (0..32)
        .map(|i| (0..72).map(|j| ((i * 7 + j) % 256) as u8).collect())
        .collect();
    let encoded = code.encode(&blocks).unwrap();
    g.throughput(Throughput::Bytes((32 * 72) as u64));
    g.bench_function("encode_k32_n48", |b| {
        b.iter(|| code.encode(black_box(&blocks)).unwrap())
    });
    // Worst-case decode: all parity blocks.
    let parity: Vec<(usize, Vec<u8>)> = (16..48).map(|i| (i, encoded[i].clone())).collect();
    g.bench_function("decode_parity_k32_n48", |b| {
        b.iter(|| code.decode(black_box(&parity), 72).unwrap())
    });
    // Best-case decode: systematic blocks (memcpy path).
    let systematic: Vec<(usize, Vec<u8>)> = (0..32).map(|i| (i, encoded[i].clone())).collect();
    g.bench_function("decode_systematic_k32_n48", |b| {
        b.iter(|| code.decode(black_box(&systematic), 72).unwrap())
    });
    g.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut g = c.benchmark_group("merkle");
    let leaves: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i; 48]).collect();
    let tree = MerkleTree::build(leaves.iter().map(|l| l.as_slice()));
    let proof = tree.proof(5);
    let root = tree.root();
    g.bench_function("build_16_leaves", |b| {
        b.iter(|| MerkleTree::build(black_box(&leaves).iter().map(|l| l.as_slice())))
    });
    g.bench_function("verify_proof_depth4", |b| {
        b.iter(|| assert!(proof.verify(black_box(&leaves[5]), &root)))
    });
    g.finish();
}

fn bench_signature(c: &mut Criterion) {
    let mut g = c.benchmark_group("schnorr");
    g.sample_size(10);
    let kp = Keypair::from_seed(b"bench");
    let msg = [0x42u8; 32];
    let sig = kp.sign(&msg);
    g.bench_function("sign", |b| b.iter(|| kp.sign(black_box(&msg))));
    g.bench_function("verify", |b| {
        b.iter(|| assert!(kp.public().verify(black_box(&msg), &sig)))
    });
    g.finish();
}

fn make_snacks(n: usize, z: usize) -> Vec<(NodeId, BitVec)> {
    (0..z)
        .map(|v| {
            let mut bits = BitVec::zeros(n);
            for j in 0..n {
                if (j * 31 + v * 17) % 3 != 0 {
                    bits.set(j, true);
                }
            }
            (NodeId(v as u32), bits)
        })
        .collect()
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("tx_scheduler");
    let (k, n, z) = (32u16, 48usize, 20usize);
    let snacks = make_snacks(n, z);
    g.bench_function("greedy_drain_20_neighbors", |b| {
        b.iter_batched(
            || {
                let mut p = GreedyRoundRobinPolicy::new();
                for (id, bits) in &snacks {
                    let q = bits.count_ones() as u16;
                    let d = (q + k).saturating_sub(n as u16).max(1);
                    p.on_snack(*id, 0, bits, d);
                }
                p
            },
            |mut p| {
                while let Some(x) = p.next() {
                    black_box(x);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("union_drain_20_neighbors", |b| {
        b.iter_batched(
            || {
                let mut p = UnionPolicy::new();
                for (id, bits) in &snacks {
                    p.on_snack(*id, 0, bits, 1);
                }
                p
            },
            |mut p| {
                while let Some(x) = p.next() {
                    black_box(x);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_reed_solomon,
    bench_merkle,
    bench_signature,
    bench_scheduler
);
criterion_main!(benches);

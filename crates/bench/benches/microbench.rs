//! Microbenchmarks for the primitives every packet exercises: hashing,
//! GF(256) slice kernels, erasure coding (with and without the decode-
//! matrix cache), Merkle verification, signature verification and the
//! TX scheduler. These quantify the per-packet computation overhead
//! discussed in the paper's §V-B.
//!
//! Self-timed (`harness = false`): the registry is unreachable in this
//! environment, so Criterion is unavailable. Each benchmark warms up,
//! then reports the median of several timed batches.
//!
//! Run with `cargo bench -p lrs-bench --bench microbench`. Options
//! (after `--`):
//!
//! * `--smoke`       short batches — a fast CI regression canary
//! * `--json PATH`   also write results as JSON (compare against the
//!   committed `BENCH_micro.json` baseline; see EXPERIMENTS.md)

use lr_seluge::GreedyRoundRobinPolicy;
use lrs_crypto::merkle::MerkleTree;
use lrs_crypto::schnorr::Keypair;
use lrs_crypto::sha256::sha256;
use lrs_crypto::sha256_mb::{sha256_batch, ShaKernel};
use lrs_deluge::policy::{TxPolicy, UnionPolicy};
use lrs_deluge::wire::BitVec;
use lrs_erasure::gf256::{slice_mul_add_assign, Gf};
use lrs_erasure::kernel::Kernel;
use lrs_erasure::matrix::Matrix;
use lrs_erasure::{ErasureCode, ReedSolomon};
use lrs_netsim::node::NodeId;
use std::hint::black_box;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Target duration of one timed batch (shrunk by `--smoke`).
static BATCH: OnceLock<Duration> = OnceLock::new();
/// Number of timed batches per benchmark (shrunk by `--smoke`).
static SAMPLES: OnceLock<usize> = OnceLock::new();
/// Collected `(name, median_seconds, bytes)` rows for `--json`.
static RESULTS: Mutex<Vec<(String, f64, u64)>> = Mutex::new(Vec::new());

fn batch_target() -> Duration {
    *BATCH.get_or_init(|| Duration::from_millis(50))
}

fn sample_count() -> usize {
    *SAMPLES.get_or_init(|| 5)
}

/// Times `f` over enough iterations to fill batches of the target
/// duration and prints the median per-iteration latency (and throughput
/// when `bytes > 0`).
fn bench(name: &str, bytes: u64, mut f: impl FnMut()) {
    // Calibrate: how many iterations fit in one batch?
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t.elapsed();
        if dt > batch_target() || iters > 1 << 24 {
            break;
        }
        iters = (iters * 4).max(4);
    }
    let mut samples: Vec<f64> = (0..sample_count())
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    if bytes > 0 {
        let mibps = bytes as f64 / median / (1024.0 * 1024.0);
        println!(
            "{name:<32} {:>12.3} µs/iter {mibps:>10.1} MiB/s",
            median * 1e6
        );
    } else {
        println!("{name:<32} {:>12.3} µs/iter", median * 1e6);
    }
    RESULTS
        .lock()
        .expect("results lock")
        .push((name.to_string(), median, bytes));
}

fn bench_sha256() {
    for size in [72usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        bench(&format!("sha256/{size}B"), size as u64, || {
            black_box(sha256(black_box(&data)));
        });
    }
    // Multi-buffer hashing: 8 independent 1 KiB messages per call. The
    // interesting comparison is against 8x `sha256/1024B` — the batch
    // amortises the message schedule across lanes.
    let msgs: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 1024]).collect();
    let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
    bench("sha256/batch8_1024B", (8 * 1024) as u64, || {
        black_box(sha256_batch(black_box(&refs)));
    });
}

fn bench_gf_kernels() {
    // 72 B is the paper's block length; 4 KiB stresses throughput.
    for size in [72usize, 4096] {
        let src: Vec<u8> = (0..size).map(|i| (i * 37 % 256) as u8).collect();
        let mut dst: Vec<u8> = (0..size).map(|i| (i * 11 % 256) as u8).collect();
        let coeff = Gf(0x8e);
        let label = if size < 1024 {
            format!("{size}B")
        } else {
            format!("{}KiB", size / 1024)
        };
        bench(&format!("gf/mul_slice_{label}"), size as u64, || {
            slice_mul_add_assign(black_box(&mut dst), black_box(coeff), black_box(&src));
        });
        // Every kernel this CPU can run, pinned explicitly — the
        // dispatched entry above shows what production code gets; these
        // isolate each implementation for cross-kernel comparison (the
        // `scalar` row doubles as the pre-SIMD reference).
        for k in Kernel::supported() {
            bench(
                &format!("gf/mul_slice_{}_{label}", k.name()),
                size as u64,
                || {
                    lrs_erasure::kernel::mul_add_assign(
                        black_box(k),
                        black_box(&mut dst),
                        black_box(coeff),
                        black_box(&src),
                    );
                },
            );
        }
    }
}

fn bench_matrix() {
    // The decode-time inversion at the paper's k = 32: a random
    // Vandermonde row subset, as produced by a parity-heavy reception.
    let k = 32;
    let v = Matrix::vandermonde(48, k);
    let rows: Vec<usize> = (16..48).collect();
    let sub = v.select_rows(&rows);
    bench("matrix/inverse_k32", 0, || {
        black_box(black_box(&sub).inverse().unwrap());
    });
}

fn bench_reed_solomon() {
    // The paper's page shape: k = 32, n = 48, 72-byte blocks.
    let code = ReedSolomon::new(32, 48).unwrap();
    let blocks: Vec<Vec<u8>> = (0..32)
        .map(|i| (0..72).map(|j| ((i * 7 + j) % 256) as u8).collect())
        .collect();
    let encoded = code.encode(&blocks).unwrap();
    bench("rs/encode_k32_n48", (32 * 72) as u64, || {
        black_box(code.encode(black_box(&blocks)).unwrap());
    });
    // Worst-case decode: all parity blocks, repeated pattern (the decode
    // matrix cache is warm after the first iteration — this is the
    // repeated-erasure-pattern case dominant in sim runs).
    let parity: Vec<(usize, Vec<u8>)> = (16..48).map(|i| (i, encoded[i].clone())).collect();
    bench("rs/decode_parity_k32_n48", (32 * 72) as u64, || {
        black_box(code.decode(black_box(&parity), 72).unwrap());
    });
    let parity_refs: Vec<(usize, &[u8])> = (16..48).map(|i| (i, encoded[i].as_slice())).collect();
    bench("rs/decode_cached_k32_n48", (32 * 72) as u64, || {
        black_box(code.decode_refs(black_box(&parity_refs), 72).unwrap());
    });
    // The same pattern with the cache disabled: every decode pays the
    // full Gauss-Jordan inversion.
    let uncached = ReedSolomon::with_cache_capacity(32, 48, 0).unwrap();
    bench("rs/decode_uncached_k32_n48", (32 * 72) as u64, || {
        black_box(uncached.decode_refs(black_box(&parity_refs), 72).unwrap());
    });
    // Best-case decode: systematic blocks (memcpy path).
    let systematic: Vec<(usize, Vec<u8>)> = (0..32).map(|i| (i, encoded[i].clone())).collect();
    bench("rs/decode_systematic_k32_n48", (32 * 72) as u64, || {
        black_box(code.decode(black_box(&systematic), 72).unwrap());
    });
}

fn bench_merkle() {
    let leaves: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i; 48]).collect();
    let tree = MerkleTree::build(leaves.iter().map(|l| l.as_slice()));
    let proof = tree.proof(5);
    let root = tree.root();
    bench("merkle/build_16_leaves", 0, || {
        black_box(MerkleTree::build(
            black_box(&leaves).iter().map(|l| l.as_slice()),
        ));
    });
    bench("merkle/verify_proof_depth4", 0, || {
        assert!(proof.verify(black_box(&leaves[5]), &root));
    });
}

fn bench_signature() {
    let kp = Keypair::from_seed(b"bench");
    let msg = [0x42u8; 32];
    let sig = kp.sign(&msg);
    bench("schnorr/sign", 0, || {
        black_box(kp.sign(black_box(&msg)));
    });
    bench("schnorr/verify", 0, || {
        assert!(kp.public().verify(black_box(&msg), &sig));
    });
}

fn make_snacks(n: usize, z: usize) -> Vec<(NodeId, BitVec)> {
    (0..z)
        .map(|v| {
            let mut bits = BitVec::zeros(n);
            for j in 0..n {
                if (j * 31 + v * 17) % 3 != 0 {
                    bits.set(j, true);
                }
            }
            (NodeId(v as u32), bits)
        })
        .collect()
}

fn bench_scheduler() {
    let (k, n, z) = (32u16, 48usize, 20usize);
    let snacks = make_snacks(n, z);
    bench("sched/greedy_drain_20_neighbors", 0, || {
        let mut p = GreedyRoundRobinPolicy::new();
        for (id, bits) in &snacks {
            let q = bits.count_ones() as u16;
            let d = (q + k).saturating_sub(n as u16).max(1);
            p.on_snack(*id, 0, bits, d);
        }
        while let Some(x) = p.next() {
            black_box(x);
        }
    });
    bench("sched/union_drain_20_neighbors", 0, || {
        let mut p = UnionPolicy::new();
        for (id, bits) in &snacks {
            p.on_snack(*id, 0, bits, 1);
        }
        while let Some(x) = p.next() {
            black_box(x);
        }
    });
}

/// Writes the collected results as a small hand-rolled JSON document
/// with the same shape as the committed `BENCH_micro.json` baseline.
fn write_json(path: &str) {
    let results = RESULTS.lock().expect("results lock");
    let mut out = String::from("{\n  \"benchmarks\": {\n");
    for (i, (name, median, bytes)) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let us = median * 1e6;
        if *bytes > 0 {
            let mibps = *bytes as f64 / median / (1024.0 * 1024.0);
            out.push_str(&format!(
                "    \"{name}\": {{\"median_us\": {us:.3}, \"mib_per_s\": {mibps:.1}}}{sep}\n"
            ));
        } else {
            out.push_str(&format!(
                "    \"{name}\": {{\"median_us\": {us:.3}}}{sep}\n"
            ));
        }
    }
    out.push_str("  }\n}\n");
    std::fs::write(path, out).expect("write json");
    eprintln!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        // Short batches: noisy numbers, but enough to catch a kernel
        // that stopped compiling or regressed by an order of magnitude.
        BATCH.set(Duration::from_millis(5)).expect("set once");
        SAMPLES.set(3).expect("set once");
    }
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    println!(
        "gf kernel: {} (LRS_GF_KERNEL to force)   sha kernel: {} (LRS_SHA_KERNEL to force)",
        Kernel::active().name(),
        ShaKernel::active().name(),
    );
    println!(
        "{:<32} {:>17} {:>16}",
        "benchmark", "median latency", "throughput"
    );
    bench_sha256();
    bench_gf_kernels();
    bench_matrix();
    bench_reed_solomon();
    bench_merkle();
    bench_signature();
    bench_scheduler();
    if let Some(path) = json_path {
        write_json(&path);
    }
}

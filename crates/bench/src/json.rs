//! Minimal JSON emission and the experiment result-file schema.
//!
//! The workspace resolves dependencies offline, so there is no serde;
//! this module hand-renders the small, fixed shape the bench bins emit.
//! Next to each `results/<name>.csv` the bins write a
//! `results/<name>.json` carrying what the CSV cannot: per-seed raw
//! samples, the sample mean, and a 95 % confidence interval per metric.
//!
//! Schema (one object per file):
//!
//! ```json
//! {
//!   "experiment": "fig3a",
//!   "threads": 8,
//!   "seeds": 10,
//!   "rows": [
//!     {
//!       "params": {"p": 0.1, "n_receivers": 10},
//!       "metrics": {
//!         "data_pkts": {"samples": [410.0, 395.0], "mean": 402.5, "ci95": 9.53},
//!         "...": {}
//!       }
//!     }
//!   ]
//! }
//! ```
//!
//! Non-finite numbers render as `null` (JSON has no NaN), so a latency
//! column over stalled runs stays machine-readable.

use crate::runner::ExperimentMetrics;
use crate::stats::summarize;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for numbers.
    pub fn num(v: impl Into<f64>) -> Json {
        Json::Num(v.into())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // Shortest round-trip representation; integral values
                    // print without an exponent or trailing zeros, which
                    // keeps golden files stable and diffs readable.
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl Json {
    /// Looks up a key in an object value (`None` on missing key or
    /// non-object).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite-or-NaN number (`null` reads as NaN, the
    /// inverse of [`render`](Self::render)'s NaN → `null` mapping).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document. Strict on structure (unbalanced brackets,
/// trailing garbage, and bad escapes are errors), permissive on
/// whitespace. Errors carry the byte offset so a torn `jobs.log` tail
/// is diagnosable.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogates never appear in our own output;
                        // map them to the replacement character rather
                        // than failing the whole document.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

/// Writes `value` to `results/<name>.json` (creating the directory),
/// returning the path written. Counterpart of
/// [`write_csv`](crate::table::write_csv) for bins whose results do not
/// fit the [`JsonReport`] row shape.
///
/// # Panics
///
/// Panics on I/O errors — the harness has nothing useful to do without
/// its output directory.
pub fn write_json(name: &str, value: &Json) -> String {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let mut f = fs::File::create(&path).expect("create json");
    f.write_all(value.render().as_bytes()).expect("write json");
    f.write_all(b"\n").expect("write json");
    path.display().to_string()
}

/// A `{"samples": […], "mean": …, "ci95": …}` object for one metric —
/// the per-metric leaf shape every results file uses.
pub fn stat_json(samples: &[f64]) -> Json {
    let s = summarize(samples);
    Json::Obj(vec![
        (
            "samples".into(),
            Json::Arr(samples.iter().map(|&v| Json::Num(v)).collect()),
        ),
        ("mean".into(), Json::Num(s.mean)),
        ("ci95".into(), Json::Num(s.ci95)),
    ])
}

/// One sweep point: its parameters and the per-seed metric samples.
#[derive(Clone, Debug)]
struct Row {
    params: Vec<(String, Json)>,
    samples: Vec<ExperimentMetrics>,
}

/// Accumulates sweep rows and writes the `results/<name>.json` file.
#[derive(Clone, Debug)]
pub struct JsonReport {
    experiment: String,
    threads: usize,
    seeds: u64,
    rows: Vec<Row>,
}

impl JsonReport {
    /// Starts a report for `experiment` run with `seeds` seeds on
    /// `threads` harness threads.
    pub fn new(experiment: impl Into<String>, seeds: u64, threads: usize) -> Self {
        JsonReport {
            experiment: experiment.into(),
            threads,
            seeds,
            rows: Vec::new(),
        }
    }

    /// Appends one sweep point with its parameters (e.g. `("p", 0.1)`)
    /// and the per-seed samples the harness produced for it.
    pub fn push_row(&mut self, params: &[(&str, Json)], samples: &[ExperimentMetrics]) {
        self.rows.push(Row {
            params: params
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            samples: samples.to_vec(),
        });
    }

    /// Renders the full report object.
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let mut metrics: Vec<(String, Json)> = Vec::new();
                for name in ExperimentMetrics::NAMES {
                    let samples: Vec<f64> = row.samples.iter().map(|m| m.get(name)).collect();
                    metrics.push((name.to_string(), stat_json(&samples)));
                }
                Json::Obj(vec![
                    ("params".into(), Json::Obj(row.params.clone())),
                    ("metrics".into(), Json::Obj(metrics)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("experiment".into(), Json::str(&self.experiment)),
            ("threads".into(), Json::num(self.threads as u32)),
            ("seeds".into(), Json::num(self.seeds as u32)),
            ("rows".into(), Json::Arr(rows)),
        ])
    }

    /// Writes `results/<experiment>.json`, returning the path written.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors — the harness has nothing useful to do
    /// without its output directory (same policy as
    /// [`write_csv`](crate::table::write_csv)).
    pub fn write(&self) -> String {
        write_json(&self.experiment, &self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::num(2.5f64).render(), "2.5");
        assert_eq!(Json::num(10u16).render(), "10");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::str("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn containers_render_in_order() {
        let v = Json::Obj(vec![
            ("b".into(), Json::num(1u8)),
            ("a".into(), Json::Arr(vec![Json::Null, Json::num(2u8)])),
        ]);
        assert_eq!(v.render(), r#"{"b":1,"a":[null,2]}"#);
    }

    #[test]
    fn parse_round_trips_render() {
        let v = Json::Obj(vec![
            ("id".into(), Json::num(17u32)),
            ("scheme".into(), Json::str("lr-seluge")),
            (
                "metrics".into(),
                Json::Arr(vec![Json::num(2.5f64), Json::Null]),
            ),
            ("note".into(), Json::str("quo\"te\\slash\nnewline")),
            ("ok".into(), Json::Bool(true)),
        ]);
        assert_eq!(parse_json(&v.render()).unwrap(), v);
    }

    #[test]
    fn parse_handles_whitespace_and_numbers() {
        let v = parse_json(" { \"a\" : [ 1 , -2.5e3 , 0.125 ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap(),
            &[Json::Num(1.0), Json::Num(-2500.0), Json::Num(0.125)]
        );
    }

    #[test]
    fn parse_rejects_torn_documents() {
        // The shapes a kill -9 mid-append leaves in jobs.log.
        for torn in [
            r#"{"id":3,"metrics":[1.0,"#,
            r#"{"id":3"#,
            r#"{"id":3} extra"#,
            r#"{"id":"#,
            "",
        ] {
            assert!(parse_json(torn).is_err(), "accepted torn {torn:?}");
        }
    }

    #[test]
    fn null_reads_back_as_nan() {
        let v = parse_json("[null,2]").unwrap();
        let arr = v.as_arr().unwrap();
        assert!(arr[0].as_num().unwrap().is_nan());
        assert_eq!(arr[1].as_num(), Some(2.0));
    }

    #[test]
    fn float_bits_survive_a_render_parse_cycle() {
        // Aggregate bit-identity across resume depends on this: the log
        // stores f64s as shortest-round-trip decimal.
        for &v in &[0.1, 1.0 / 3.0, 123456.789012345, f64::MIN_POSITIVE, 1e300] {
            let back = parse_json(&Json::Num(v).render()).unwrap();
            assert_eq!(back.as_num().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn report_schema_shape() {
        let mut report = JsonReport::new("unit_test", 2, 4);
        let a = ExperimentMetrics {
            data_pkts: 10.0,
            latency_s: f64::NAN,
            ..Default::default()
        };
        let b = ExperimentMetrics {
            data_pkts: 14.0,
            latency_s: 3.0,
            ..Default::default()
        };
        report.push_row(&[("p", Json::num(0.1f64))], &[a, b]);
        let text = report.to_json().render();
        assert!(text.starts_with(r#"{"experiment":"unit_test","threads":4,"seeds":2,"#));
        assert!(text.contains(r#""params":{"p":0.1}"#), "{text}");
        assert!(
            text.contains(r#""data_pkts":{"samples":[10,14],"mean":12,"ci95":"#),
            "{text}"
        );
        // NaN latency sample renders as null; its mean is over the finite one.
        assert!(
            text.contains(r#""latency_s":{"samples":[null,3],"mean":3,"ci95":0}"#),
            "{text}"
        );
    }
}

//! Experiment harness for the LR-Seluge reproduction.
//!
//! One binary per figure/table of the paper's evaluation (§VI):
//!
//! | Binary     | Paper artifact | What it sweeps |
//! |------------|----------------|----------------|
//! | `fig3`     | Fig. 3(a)/(b)  | One-page data-packet count vs `p` and vs `N`: analytical Seluge, analytical ACK-based LR-Seluge, simulated Seluge, simulated LR-Seluge |
//! | `fig4`     | Fig. 4(a)–(e)  | One-hop, `N = 20`, 20 KB image, sweep `p`: five metrics for LR-Seluge vs Seluge |
//! | `fig5`     | Fig. 5(a)–(e)  | One-hop, `p = 0.1`, sweep `N` |
//! | `fig6`     | Fig. 6(a)–(e)  | LR-Seluge, `k = 32`, sweep coding rate `n/k` under several `p` |
//! | `table2_3` | Tables II/III  | 15×15 multi-hop grids (tight/medium density) with bursty noise |
//! | `attack`   | §IV-E claims   | Bogus-data / forged-signature floods; Deluge corruption contrast; denial-of-receipt budget |
//! | `imgsize`  | §VI-C          | Image-size sweep (4–80 KB) |
//! | `ablation` | design choices | Greedy scheduler vs union rule; RS vs XOR vs LT page codes |
//! | `overhead` | §V-B           | Per-receiver hashes / signature verifications / erasure ops |
//! | `probe`    | diagnostics    | One run with per-node statistics (`LRS_TRACE=1` for a TX/SNACK trace) |
//! | `chaos`    | robustness     | Fault-intensity sweep with invariant checking and a watchdog demo |
//! | `scale`    | engine         | Shard-scaling sweep of the parallel engine |
//! | `replay`   | flight recorder| Capture, replay, and bisect run capsules (see `capsules`) |
//! | `campaign` | fleets         | Checkpointed Monte-Carlo campaigns over a grid spec (see `campaign`) |
//! | `campdiff` | regression gate| Statistical diff of two campaign reports (see `diff`) |
//!
//! Run any of them with `cargo run -p lrs-bench --release --bin <name>`.
//! Each prints the paper-style series and writes a CSV next to it under
//! `results/`.

pub mod campaign;
pub mod capsules;
pub mod cli;
pub mod diff;
pub mod harness;
pub mod json;
pub mod runner;
pub mod spec;
pub mod stats;
pub mod table;

pub use campaign::{Campaign, CampaignReport};
pub use cli::{Cli, CliError};
pub use diff::{diff_reports, CellKey, DiffReport, ReportDoc, Verdict};
pub use harness::{configured_threads, parallel_map, sample_grid};
pub use json::{parse_json, stat_json, write_json, Json, JsonReport};
pub use runner::{
    aggregate, average, matched_seluge_params, run_deluge, run_lr, run_seluge, sample_seeds,
    ExperimentMetrics, RunSpec,
};
pub use spec::CampaignSpec;
pub use stats::{summarize, Summary};
pub use table::{write_csv, Table};

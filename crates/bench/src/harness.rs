//! Work-stealing parallel fan-out for Monte-Carlo experiments.
//!
//! Every figure and table is an average over many independent
//! (sweep-point × seed) simulations. Each simulation builds its own
//! [`Simulator`](lrs_netsim::sim::Simulator) with its own seeded RNG
//! streams, so runs are embarrassingly parallel and — crucially —
//! per-seed results are bit-identical regardless of how many worker
//! threads execute them or in which order jobs are stolen.
//!
//! No external dependencies: workers are `std::thread::scope` threads
//! pulling job indices from a shared atomic counter (work stealing in
//! its simplest form — the next free worker takes the next job), and
//! results land in their job's slot so output order never depends on
//! scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads the harness should use.
///
/// Resolution order: an explicit `--threads N` on the command line, the
/// `LRS_THREADS` environment variable, then the machine's available
/// parallelism. The floor is 1.
pub fn configured_threads() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            if let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                return n.max(1);
            }
        } else if let Some(v) = a.strip_prefix("--threads=") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
    }
    if let Ok(v) = std::env::var("LRS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every element of `items` on `threads` workers and
/// returns the outputs in input order.
///
/// Jobs are claimed from a shared counter, so a long-running item only
/// occupies one worker while the rest steal ahead. With `threads == 1`
/// this degenerates to a sequential loop over the same order — outputs
/// are identical either way because each job is independent and results
/// are written to per-job slots.
pub fn parallel_map<I, O, F>(items: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= items.len() {
                    break;
                }
                let out = f(&items[idx]);
                *slots[idx].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without writing its slot")
        })
        .collect()
}

/// Fans the full (sweep-point × seed) product out over the harness
/// threads and regroups the results per point (inner `Vec` indexed by
/// seed − 1; seeds are `1..=seeds` as everywhere in the bench).
///
/// This is the shape every sweep bin wants: with `points × seeds` jobs
/// in one pool, the tail of a slow point overlaps the start of the next
/// instead of serializing on per-point barriers.
pub fn sample_grid<P, O, F>(points: &[P], seeds: u64, threads: usize, f: F) -> Vec<Vec<O>>
where
    P: Sync,
    O: Send,
    F: Fn(&P, u64) -> O + Sync,
{
    let jobs: Vec<(usize, u64)> = (0..points.len())
        .flat_map(|p| (1..=seeds).map(move |s| (p, s)))
        .collect();
    let flat = parallel_map(&jobs, threads, |&(p, s)| f(&points[p], s));
    let mut grouped: Vec<Vec<O>> = (0..points.len()).map(|_| Vec::new()).collect();
    for ((p, _), out) in jobs.into_iter().zip(flat) {
        grouped[p].push(out);
    }
    grouped
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn one_thread_matches_many() {
        let items: Vec<u64> = (0..50).collect();
        let seq = parallel_map(&items, 1, |&x| x.wrapping_mul(0x9e3779b9) >> 7);
        let par = parallel_map(&items, 7, |&x| x.wrapping_mul(0x9e3779b9) >> 7);
        assert_eq!(seq, par);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let hits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..333).collect();
        let out = parallel_map(&items, 5, |&x| {
            hits.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(hits.load(Ordering::Relaxed), 333);
        assert_eq!(out.iter().copied().collect::<HashSet<_>>().len(), 333);
    }

    #[test]
    fn empty_input_is_fine() {
        let items: Vec<u32> = Vec::new();
        assert!(parallel_map(&items, 4, |&x| x).is_empty());
    }

    #[test]
    fn grid_groups_by_point_in_seed_order() {
        let points = [10u64, 20, 30];
        let grid = sample_grid(&points, 4, 6, |&p, seed| p + seed);
        assert_eq!(grid.len(), 3);
        assert_eq!(grid[0], vec![11, 12, 13, 14]);
        assert_eq!(grid[2], vec![31, 32, 33, 34]);
    }

    #[test]
    fn grid_matches_sequential_reference() {
        let points: Vec<u64> = (0..5).collect();
        let f = |&p: &u64, s: u64| p.wrapping_mul(31).wrapping_add(s);
        let par = sample_grid(&points, 3, 8, f);
        let seq: Vec<Vec<u64>> = points
            .iter()
            .map(|p| (1..=3).map(|s| f(p, s)).collect())
            .collect();
        assert_eq!(par, seq);
    }
}

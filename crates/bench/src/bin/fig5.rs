//! Figure 5: impact of node density (one-hop, p = 0.1, 20 KB image),
//! sweeping the number of receivers `N`: the five metrics for LR-Seluge
//! vs Seluge.
//!
//! Expected shape (§VI-B-2): every cost grows with `N`, but LR-Seluge
//! grows much more slowly; Seluge's latency creeps up with `N` while
//! LR-Seluge's slightly decreases (the more requesters, the sooner some
//! node decodes the page and requests the next one).

use lr_seluge::LrSelugeParams;
use lrs_bench::{
    aggregate, configured_threads, matched_seluge_params, run_lr, run_seluge, sample_grid,
    write_csv, Json, JsonReport, RunSpec, Table,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds = if quick { 1 } else { 3 };
    let threads = configured_threads();
    let lr = if quick {
        LrSelugeParams {
            image_len: 4 * 1024,
            ..LrSelugeParams::default()
        }
    } else {
        LrSelugeParams::default()
    };
    let seluge = matched_seluge_params(&lr);
    let p = 0.1f64;

    println!(
        "Fig 5: one-hop, p = {p}, image {} KB, sweep N (seeds = {seeds}, threads = {threads})\n",
        lr.image_len / 1024
    );
    let ns: &[usize] = if quick {
        &[5, 20, 40]
    } else {
        &[5, 10, 15, 20, 25, 30, 35, 40]
    };
    // Interleaved (point, scheme) jobs: even rows LR-Seluge, odd Seluge.
    let points: Vec<(usize, bool)> = ns.iter().flat_map(|&n| [(n, true), (n, false)]).collect();
    let grid = sample_grid(&points, seeds, threads, |&(n_rx, is_lr), seed| {
        let spec = RunSpec::one_hop(n_rx, p);
        if is_lr {
            run_lr(&spec, lr, seed)
        } else {
            run_seluge(&spec, seluge, seed)
        }
    });

    let mut t = Table::new(vec![
        "N",
        "scheme",
        "data_pkts",
        "snack_pkts",
        "adv_pkts",
        "total_kbytes",
        "latency_s",
    ]);
    let mut j = JsonReport::new("fig5", seeds, threads);
    for (i, &n_rx) in ns.iter().enumerate() {
        let m_lr = aggregate(&grid[2 * i]);
        let m_s = aggregate(&grid[2 * i + 1]);
        j.push_row(
            &[
                ("N", Json::num(n_rx as u32)),
                ("scheme", Json::str("lr-seluge")),
            ],
            &grid[2 * i],
        );
        j.push_row(
            &[
                ("N", Json::num(n_rx as u32)),
                ("scheme", Json::str("seluge")),
            ],
            &grid[2 * i + 1],
        );
        for (name, m) in [("lr-seluge", &m_lr), ("seluge", &m_s)] {
            t.row(vec![
                format!("{n_rx}"),
                name.to_string(),
                format!("{:.0}", m.data_pkts),
                format!("{:.0}", m.snack_pkts),
                format!("{:.0}", m.adv_pkts),
                format!("{:.1}", m.total_bytes / 1024.0),
                format!("{:.1}", m.latency_s),
            ]);
        }
    }
    println!("{}", t.render());
    println!("wrote {}", write_csv("fig5", &t));
    println!("wrote {}", j.write());
}

//! Shard-scaling sweep for the parallel discrete-event engine.
//!
//! Runs a full dissemination of both schemes (LR-Seluge and Seluge) on
//! multi-hop grids of ~1k / ~5k / ~10k nodes, sweeping the shard count
//! 1–16, and records wall-clock time per configuration. Because the
//! sharded engine is deterministic in the shard count, every run of a
//! configuration must also produce *identical* metrics — the sweep
//! asserts this, so it doubles as a large-scale determinism check.
//!
//! Modes:
//!
//! * default — 32×32, 71×71, and 100×100 grids, shards {1, 2, 4, 8, 16}
//! * `--quick` — the 32×32 grid only
//! * `--smoke` — CI gate: a 20×20 (400-node) grid at 1 and 2 shards,
//!   asserting the 2-shard metrics equal the 1-shard metrics
//!
//! Writes `results/scale.json` including the machine's core count;
//! speedup numbers are only meaningful relative to it (on a single-core
//! container every shard count shares one CPU and the sweep measures
//! synchronization overhead, not parallel speedup — see
//! `BENCH_scale.json`).

use lr_seluge::Deployment;
use lrs_bench::capsules::{scale_image as test_image, scale_params as small_lr, ScenarioTags};
use lrs_bench::{matched_seluge_params, write_json, Json, Table};
use lrs_crypto::cluster::ClusterKey;
use lrs_crypto::puzzle::{Puzzle, PuzzleKeyChain};
use lrs_crypto::schnorr::Keypair;
use lrs_deluge::engine::DisseminationNode;
use lrs_deluge::policy::UnionPolicy;
use lrs_netsim::node::{NodeId, Protocol};
use lrs_netsim::sim::Outcome;
use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;
use lrs_netsim::{ShardedRun, SimBuilder};
use std::path::{Path, PathBuf};
use std::time::Instant;

const SEED: u64 = 1;

fn deadline() -> Duration {
    Duration::from_secs(100_000)
}

/// Per-run record: completion fraction plus the numbers that must be
/// shard-count independent.
struct CaseRun {
    wall_s: f64,
    outcome: Outcome,
    final_time_us: u64,
    completed: usize,
    metrics: lrs_netsim::metrics::Metrics,
}

fn summarize(run: ShardedRun<bool>, wall_s: f64) -> CaseRun {
    CaseRun {
        wall_s,
        outcome: run.report.outcome,
        final_time_us: run.report.final_time.0,
        completed: run.harvest.iter().filter(|c| **c).count(),
        metrics: run.metrics,
    }
}

/// Arms the flight recorder when `--capsule <dir>` was given: a run
/// ending in a diagnostic outcome (stall, invariant violation, worker
/// panic) drops a tagged replay capsule into the directory.
fn with_capsule<P, F>(
    builder: SimBuilder<P, F>,
    capsule_dir: Option<&Path>,
    scheme: &str,
    side: usize,
    shards: usize,
) -> SimBuilder<P, F> {
    let Some(dir) = capsule_dir else {
        return builder;
    };
    let tags = ScenarioTags::new(scheme, "scale", 1024, "scale sweep");
    let mut b = builder
        .capsule_on_failure(dir.join(format!("scale-{scheme}-{side}x{side}-s{shards}.jsonl")));
    for (key, value) in tags.pairs() {
        b = b.scenario(key, value);
    }
    b
}

fn run_lr(side: usize, shards: usize, capsule_dir: Option<&Path>) -> CaseRun {
    let image = test_image(1024);
    let deployment = Deployment::new(&image, small_lr(image.len()), b"scale sweep");
    let start = Instant::now();
    let builder = SimBuilder::new(Topology::grid(side, 10.0, 77), SEED, |id| {
        // No shared digest cache: the memo is Rc-based and nodes are
        // constructed inside shard worker threads.
        deployment.node(id, NodeId(0))
    })
    .shards(shards);
    let run = with_capsule(builder, capsule_dir, "lr-seluge", side, shards)
        .run_sharded(deadline(), |_, node| Protocol::is_complete(node));
    summarize(run, start.elapsed().as_secs_f64())
}

fn run_seluge(side: usize, shards: usize, capsule_dir: Option<&Path>) -> CaseRun {
    let image = test_image(1024);
    let params = matched_seluge_params(&small_lr(image.len()));
    let kp = Keypair::from_seed(b"scale sweep");
    let chain = PuzzleKeyChain::generate(b"scale sweep", params.version as u32 + 4);
    let artifacts = lrs_seluge::preprocess::SelugeArtifacts::build(&image, params, &kp, &chain);
    let puzzle = Puzzle::new(chain.anchor(), params.puzzle_strength);
    let key = ClusterKey::derive(b"scale sweep", 0);
    let start = Instant::now();
    let builder = SimBuilder::new(Topology::grid(side, 10.0, 77), SEED, |id| {
        let scheme = if id == NodeId(0) {
            lrs_seluge::scheme::SelugeScheme::base(&artifacts, kp.public(), puzzle)
        } else {
            lrs_seluge::scheme::SelugeScheme::receiver(params, kp.public(), puzzle)
        };
        DisseminationNode::new(scheme, UnionPolicy::new(), key.clone(), Default::default())
    })
    .shards(shards);
    let run = with_capsule(builder, capsule_dir, "seluge", side, shards)
        .run_sharded(deadline(), |_, node| Protocol::is_complete(node));
    summarize(run, start.elapsed().as_secs_f64())
}

const FLAGS: &[lrs_bench::cli::Flag] = &[
    lrs_bench::cli::flag("--smoke", "CI gate: 20x20 grid at 1 and 2 shards"),
    lrs_bench::cli::flag("--quick", "the 32x32 grid only"),
    lrs_bench::cli::valued("--capsule", "arm the flight recorder on every run"),
];

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("scale: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), lrs_bench::CliError> {
    let cli = lrs_bench::Cli::parse("scale", FLAGS)?;
    let (smoke, quick) = (cli.smoke(), cli.quick());
    // `--capsule <dir>`: arm the flight recorder on every run.
    let capsule_dir: Option<PathBuf> = cli.capsule_dir();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let shard_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8, 16] };
    let sides: &[usize] = if smoke {
        &[20]
    } else if quick {
        &[32]
    } else {
        &[32, 71, 100]
    };
    println!(
        "Shard-scaling sweep: grids {:?} (nodes = side²), shards {:?}, {} core(s) available\n",
        sides, shard_counts, cores
    );

    let mut table = Table::new(vec![
        "scheme", "nodes", "shards", "wall_s", "speedup", "outcome", "virt_s", "complete",
    ]);
    let mut rows = Vec::new();
    for &side in sides {
        let nodes = side * side;
        for scheme in ["lr-seluge", "seluge"] {
            let mut baseline: Option<CaseRun> = None;
            let mut runs_json = Vec::new();
            for &shards in shard_counts {
                let run = match scheme {
                    "lr-seluge" => run_lr(side, shards, capsule_dir.as_deref()),
                    _ => run_seluge(side, shards, capsule_dir.as_deref()),
                };
                assert_eq!(
                    run.outcome,
                    Outcome::Complete,
                    "{scheme} on {side}x{side} @ {shards} shards did not complete"
                );
                assert_eq!(run.completed, nodes, "{scheme} @ {shards} shards");
                let speedup = match &baseline {
                    Some(base) => {
                        // Shard-count independence: the engine must
                        // reproduce the 1-shard metrics exactly.
                        assert_eq!(
                            run.metrics, base.metrics,
                            "{scheme} on {side}x{side}: metrics diverge at {shards} shards"
                        );
                        assert_eq!(
                            run.final_time_us, base.final_time_us,
                            "{scheme} on {side}x{side}: final time diverges at {shards} shards"
                        );
                        base.wall_s / run.wall_s
                    }
                    None => 1.0,
                };
                table.row(vec![
                    scheme.to_string(),
                    nodes.to_string(),
                    shards.to_string(),
                    format!("{:.2}", run.wall_s),
                    format!("{speedup:.2}"),
                    format!("{:?}", run.outcome),
                    format!("{:.1}", run.final_time_us as f64 / 1e6),
                    run.completed.to_string(),
                ]);
                println!(
                    "{scheme:10} {nodes:6} nodes  {shards:2} shards  {:.2} s wall  {speedup:.2}x",
                    run.wall_s
                );
                runs_json.push(Json::Obj(vec![
                    ("shards".into(), Json::num(shards as u32)),
                    ("wall_s".into(), Json::num(run.wall_s)),
                    ("speedup_vs_1_shard".into(), Json::num(speedup)),
                    ("outcome".into(), Json::str(format!("{:?}", run.outcome))),
                    (
                        "virtual_time_s".into(),
                        Json::num(run.final_time_us as f64 / 1e6),
                    ),
                    ("completed_nodes".into(), Json::num(run.completed as u32)),
                    (
                        "total_tx_bytes".into(),
                        Json::num(run.metrics.total_tx_bytes() as f64),
                    ),
                ]));
                if baseline.is_none() {
                    baseline = Some(run);
                }
            }
            rows.push(Json::Obj(vec![
                ("scheme".into(), Json::str(scheme)),
                ("grid_side".into(), Json::num(side as u32)),
                ("nodes".into(), Json::num(nodes as u32)),
                ("runs".into(), Json::Arr(runs_json)),
            ]));
        }
    }

    println!("\n{}", table.render());
    let doc = Json::Obj(vec![
        ("experiment".into(), Json::str("scale")),
        (
            "mode".into(),
            Json::str(if smoke {
                "smoke"
            } else if quick {
                "quick"
            } else {
                "full"
            }),
        ),
        ("cores".into(), Json::num(cores as u32)),
        ("seed".into(), Json::num(SEED as u32)),
        (
            "note".into(),
            Json::str(
                "Speedup is wall-clock relative to 1 shard on this machine; \
                 with a single core it measures synchronization overhead, \
                 not parallelism.",
            ),
        ),
        ("rows".into(), Json::Arr(rows)),
    ]);
    println!("wrote {}", write_json("scale", &doc));
    if smoke {
        println!("scale smoke: 2-shard metrics identical to 1-shard metrics");
    }
    Ok(())
}

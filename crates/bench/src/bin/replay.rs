//! Flight-recorder front-end: capture, replay, and bisect run capsules.
//!
//! A capsule (`lrs_netsim::capsule`) records everything needed to
//! re-execute a simulation bit-identically — seed, config, sampled
//! topology, fault schedule, scenario tags, and per-engine run digests.
//! This binary drives the whole loop from the command line:
//!
//! ```text
//! replay --capture <path> [--scheme lr-seluge|seluge] [--seed N] [--image-bytes N]
//!     Run a small chaos-profile scenario on both engines and save a
//!     capsule with both digests (extension lrsc/bin → framed binary,
//!     anything else → JSONL).
//!
//! replay --replay <path> [--engine sequential|sharded] [--shards N]
//!     Load a capsule, reconstruct its node population from the
//!     scenario tags, re-execute, and verify the recomputed digest
//!     against the recorded one. Exits 1 on divergence.
//!
//! replay --bisect <path> [--shards A,B | --engines]
//!     Replay at two shard counts (default 1,4) and report the first
//!     diverging OrderKey with context — or compare the sequential and
//!     sharded engines' event orders.
//!
//! replay --smoke
//!     CI gate: capture both schemes, replay each on the sequential
//!     engine and at 1/4 shards, verify every digest, and assert the
//!     shard bisector finds no divergence.
//! ```
//!
//! Capsules written by `chaos --capsule <dir>` and `scale --capsule
//! <dir>` load here directly: their scenario tags name the scheme,
//! parameter profile, image length, and key context, which is all the
//! registry in `lrs_bench::capsules` needs to rebuild `make_node`.

use lrs_bench::capsules::{
    bisect_capsule_engines, bisect_capsule_shards, chaos_sim_config, replay_capsule, ScenarioTags,
};
use lrs_bench::Cli;
use lrs_netsim::capsule::{SEQUENTIAL_ENGINE, SHARDED_ENGINE};
use lrs_netsim::fault::FaultPlan;
use lrs_netsim::node::NodeId;
use lrs_netsim::time::{Duration, SimTime};
use lrs_netsim::topology::Topology;
use lrs_netsim::{verify_replay, Capsule, EngineDigest, ReplayRun};
use std::path::PathBuf;
use std::process::ExitCode;

/// Star size of captured demo scenarios (matches the chaos sweep: one
/// base station + 8 honest receivers + one spare).
const CAPTURE_NODES: usize = 10;

const FLAGS: &[lrs_bench::cli::Flag] = &[
    lrs_bench::cli::valued(
        "--capture",
        "run a demo scenario and save a capsule to <path>",
    ),
    lrs_bench::cli::valued("--scheme", "captured scheme: lr-seluge (default) or seluge"),
    lrs_bench::cli::valued("--seed", "capture seed (default 7)"),
    lrs_bench::cli::valued("--image-bytes", "captured image size (default 2048)"),
    lrs_bench::cli::valued(
        "--replay",
        "load capsule <path>, re-execute, verify its digest",
    ),
    lrs_bench::cli::valued("--engine", "replay engine: sequential or sharded"),
    lrs_bench::cli::valued("--shards", "shard count (replay) or pair like 1,4 (bisect)"),
    lrs_bench::cli::valued(
        "--bisect",
        "replay capsule <path> at two shard counts and diff",
    ),
    lrs_bench::cli::flag(
        "--engines",
        "bisect sequential vs sharded event orders instead",
    ),
    lrs_bench::cli::flag(
        "--smoke",
        "CI gate: capture + replay both schemes, assert lockstep",
    ),
];

/// Builds and captures a demo scenario: a chaos-profile run with a
/// small deterministic fault plan, digested on both engines.
fn capture(path: &PathBuf, scheme: &str, seed: u64, image_len: usize) -> Result<(), String> {
    let tags = ScenarioTags::new(scheme, "chaos", image_len, "chaos keys");
    let mut faults = FaultPlan::new();
    // Mid-dissemination churn: one receiver reboots, one stays down,
    // and the spare's uplink flaps — enough to exercise every fault
    // path without stalling the run.
    faults.crash_and_reboot(NodeId(3), SimTime(2_000_000), Duration::from_secs(5));
    faults.crash(NodeId(7), SimTime(4_000_000));
    faults.link_outage(
        NodeId(9),
        NodeId(0),
        SimTime(1_000_000),
        Duration::from_secs(3),
    );
    let mut capsule = Capsule {
        seed,
        engine: SHARDED_ENGINE.to_string(),
        shards: 2,
        deadline: Duration::from_secs(5_000),
        config: chaos_sim_config(),
        topology: Topology::star(CAPTURE_NODES),
        faults,
        scenario: tags.pairs(),
        digests: Vec::new(),
    };
    let sequential = replay_capsule(&capsule, SEQUENTIAL_ENGINE, 1)?;
    let sharded = replay_capsule(&capsule, SHARDED_ENGINE, 2)?;
    println!(
        "captured {scheme} (seed {seed}, {image_len} B image): \
         sequential {} @ {:.1} s, sharded {} @ {:.1} s",
        sequential.digest.outcome,
        sequential.report.final_time.as_secs_f64(),
        sharded.digest.outcome,
        sharded.report.final_time.as_secs_f64(),
    );
    capsule.digests = vec![
        EngineDigest {
            engine: SEQUENTIAL_ENGINE.to_string(),
            shards: 1,
            digest: sequential.digest,
        },
        EngineDigest {
            engine: SHARDED_ENGINE.to_string(),
            shards: 2,
            digest: sharded.digest,
        },
    ];
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir:?}: {e}"))?;
        }
    }
    capsule
        .save(path)
        .map_err(|e| format!("saving {path:?}: {e}"))?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Replays a loaded capsule and verifies the digest, printing a
/// human-readable verdict. Returns `Err` on divergence.
fn replay_and_verify(capsule: &Capsule, engine: &str, shards: usize) -> Result<ReplayRun, String> {
    let run = replay_capsule(capsule, engine, shards)?;
    match verify_replay(capsule, &run) {
        Ok(()) => {
            println!(
                "replay OK: {engine}{} reproduced outcome {:?} at {:.1} s, \
                 {} trace events, digests match",
                if engine == SHARDED_ENGINE {
                    format!(" @ {shards} shards")
                } else {
                    String::new()
                },
                run.report.outcome,
                run.report.final_time.as_secs_f64(),
                run.trace.len(),
            );
            Ok(run)
        }
        Err(err) => Err(format!("replay FAILED: {err}")),
    }
}

fn cmd_replay(cli: &Cli, path: &PathBuf) -> Result<(), String> {
    let capsule = Capsule::load(path).map_err(|e| format!("loading {path:?}: {e}"))?;
    let engine = cli
        .value("--engine")
        .map(str::to_string)
        .unwrap_or_else(|| capsule.engine.clone());
    let shards = cli
        .parsed::<usize>("--shards")
        .map_err(|e| e.to_string())?
        .unwrap_or(capsule.shards);
    println!(
        "capsule: seed {}, captured on {} @ {} shard(s), {} nodes, {} fault events",
        capsule.seed,
        capsule.engine,
        capsule.shards,
        capsule.topology.len(),
        capsule.faults.events().len(),
    );
    replay_and_verify(&capsule, &engine, shards).map(|_| ())
}

fn cmd_bisect(cli: &Cli, path: &PathBuf) -> Result<(), String> {
    let capsule = Capsule::load(path).map_err(|e| format!("loading {path:?}: {e}"))?;
    if cli.flag("--engines") {
        match bisect_capsule_engines(&capsule)? {
            Some(div) => println!(
                "sequential and sharded event orders part ways (expected by design):\n{div}"
            ),
            None => println!("engines produced identical event orders"),
        }
        return Ok(());
    }
    let spec = cli.value("--shards").unwrap_or("1,4");
    let (a, b) = spec
        .split_once(',')
        .and_then(|(a, b)| Some((a.trim().parse().ok()?, b.trim().parse().ok()?)))
        .ok_or_else(|| format!("bad --shards {spec:?}; expected two counts like 1,4"))?;
    match bisect_capsule_shards(&capsule, a, b)? {
        Some(div) => {
            // A shard-count divergence is an engine bug: surface it loudly.
            Err(format!("shard counts {a} and {b} DIVERGE:\n{div}"))
        }
        None => {
            println!("shard counts {a} and {b} are lockstep-identical");
            Ok(())
        }
    }
}

fn cmd_smoke() -> Result<(), String> {
    let dir = PathBuf::from("results/capsules");
    let mut verified = 0usize;
    for scheme in ["lr-seluge", "seluge"] {
        let path = dir.join(format!("replay-smoke-{scheme}.lrsc"));
        capture(&path, scheme, 7, 2 * 1024)?;
        let capsule = Capsule::load(&path).map_err(|e| format!("loading {path:?}: {e}"))?;
        replay_and_verify(&capsule, SEQUENTIAL_ENGINE, 1)?;
        for shards in [1, 4] {
            replay_and_verify(&capsule, SHARDED_ENGINE, shards)?;
        }
        if let Some(div) = bisect_capsule_shards(&capsule, 1, 4)? {
            return Err(format!("{scheme}: shard counts 1 and 4 diverge:\n{div}"));
        }
        println!("{scheme}: shard counts 1 and 4 are lockstep-identical");
        verified += 3;
    }
    println!("replay smoke: {verified} replays verified bit-identical across both schemes");
    Ok(())
}

fn run() -> Result<(), String> {
    let cli = Cli::parse("replay", FLAGS).map_err(|e| e.to_string())?;
    if let Some(path) = cli.value("--capture") {
        let scheme = cli.value("--scheme").unwrap_or("lr-seluge").to_string();
        let seed = cli
            .parsed_or::<u64>("--seed", 7)
            .map_err(|e| e.to_string())?;
        let image_len = cli
            .parsed_or::<usize>("--image-bytes", 2 * 1024)
            .map_err(|e| e.to_string())?;
        return capture(&PathBuf::from(path), &scheme, seed, image_len);
    }
    if let Some(path) = cli.value("--replay") {
        return cmd_replay(&cli, &PathBuf::from(path));
    }
    if let Some(path) = cli.value("--bisect") {
        return cmd_bisect(&cli, &PathBuf::from(path));
    }
    if cli.smoke() {
        return cmd_smoke();
    }
    Err(format!(
        "no mode given; use --capture <path>, --replay <path>, --bisect <path>, or --smoke\n{}",
        cli.usage()
    ))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("{err}");
            ExitCode::FAILURE
        }
    }
}

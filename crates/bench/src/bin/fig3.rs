//! Figure 3: one-page data-packet transmissions in a one-hop cluster.
//!
//! (a) vs the packet-loss rate `p` at fixed `N`;
//! (b) vs the number of receivers `N` at fixed `p`.
//!
//! Four series each, as in the paper: analytical Seluge (max-of-geometrics
//! formula), analytical ACK-based LR-Seluge (round-process upper bound),
//! simulated Seluge, simulated LR-Seluge. The paper's observations to
//! look for: the Seluge simulation hugs its analysis; the ACK-based curve
//! upper-bounds the LR-Seluge simulation; the ACK-based curve jumps
//! between `p = 0.3` and `p = 0.4` (one round → two rounds at rate 1.5);
//! LR-Seluge is far less sensitive to both `p` and `N`.

use lr_seluge::LrSelugeParams;
use lrs_analysis::{ack_lr_expected_data_packets, seluge_expected_data_packets, AckLrModel};
use lrs_bench::{
    aggregate, configured_threads, matched_seluge_params, run_lr, run_seluge, sample_grid,
    write_csv, Json, JsonReport, RunSpec, Table,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds = if quick { 3 } else { 10 };
    let threads = configured_threads();
    let mc = AckLrModel::MonteCarlo {
        trials: if quick { 3_000 } else { 20_000 },
        seed: 99,
    };

    // One page exactly: k = 32, n = 48 encoded packets, 72 B payloads.
    let mut lr = LrSelugeParams::default();
    lr.image_len = lr.page_capacity(); // one page
    let seluge = {
        let mut s = matched_seluge_params(&lr);
        s.image_len = s.page_capacity(); // one page of 32 x 64 B slices
        s
    };
    let (k, n) = (lr.k as usize, lr.n as usize);

    // ---- Fig 3(a): vs loss rate, N fixed -------------------------------
    let n_rx = 10usize;
    let ps = [0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5];
    // Interleaved (point, scheme) jobs: even rows Seluge, odd rows LR.
    let points: Vec<(f64, bool)> = ps.iter().flat_map(|&p| [(p, false), (p, true)]).collect();
    let grid = sample_grid(&points, seeds, threads, |&(p, is_lr), seed| {
        let spec = RunSpec::one_hop(n_rx, p);
        if is_lr {
            run_lr(&spec, lr, seed)
        } else {
            run_seluge(&spec, seluge, seed)
        }
    });
    let mut ta = Table::new(vec![
        "p",
        "seluge_analytical",
        "ack_lr_analytical",
        "seluge_sim",
        "lr_sim",
    ]);
    let mut ja = JsonReport::new("fig3a", seeds, threads);
    println!("Fig 3(a): one page, N = {n_rx} receivers, data packets vs p (threads = {threads})\n");
    for (i, &p) in ps.iter().enumerate() {
        let s_ana = seluge_expected_data_packets(k, n_rx, p);
        let lr_ana = ack_lr_expected_data_packets(k, n, p, n_rx, mc);
        let s_sim = aggregate(&grid[2 * i]).page_data_pkts;
        let lr_sim = aggregate(&grid[2 * i + 1]).page_data_pkts;
        ja.push_row(
            &[("p", Json::num(p)), ("scheme", Json::str("seluge"))],
            &grid[2 * i],
        );
        ja.push_row(
            &[("p", Json::num(p)), ("scheme", Json::str("lr-seluge"))],
            &grid[2 * i + 1],
        );
        ta.row(vec![
            format!("{p:.2}"),
            format!("{s_ana:.1}"),
            format!("{lr_ana:.1}"),
            format!("{s_sim:.1}"),
            format!("{lr_sim:.1}"),
        ]);
    }
    println!("{}", ta.render());
    println!("wrote {}", write_csv("fig3a", &ta));
    println!("wrote {}\n", ja.write());

    // ---- Fig 3(b): vs number of receivers, p fixed ---------------------
    let p = 0.2f64;
    let nss = [2usize, 5, 10, 15, 20, 25, 30, 40];
    let points: Vec<(usize, bool)> = nss.iter().flat_map(|&n| [(n, false), (n, true)]).collect();
    let grid = sample_grid(&points, seeds, threads, |&(n_rx, is_lr), seed| {
        let spec = RunSpec::one_hop(n_rx, p);
        if is_lr {
            run_lr(&spec, lr, seed)
        } else {
            run_seluge(&spec, seluge, seed)
        }
    });
    let mut tb = Table::new(vec![
        "N",
        "seluge_analytical",
        "ack_lr_analytical",
        "seluge_sim",
        "lr_sim",
    ]);
    let mut jb = JsonReport::new("fig3b", seeds, threads);
    println!("Fig 3(b): one page, p = {p}, data packets vs N\n");
    for (i, &n_rx) in nss.iter().enumerate() {
        let s_ana = seluge_expected_data_packets(k, n_rx, p);
        let lr_ana = ack_lr_expected_data_packets(k, n, p, n_rx, mc);
        let s_sim = aggregate(&grid[2 * i]).page_data_pkts;
        let lr_sim = aggregate(&grid[2 * i + 1]).page_data_pkts;
        jb.push_row(
            &[
                ("N", Json::num(n_rx as u32)),
                ("scheme", Json::str("seluge")),
            ],
            &grid[2 * i],
        );
        jb.push_row(
            &[
                ("N", Json::num(n_rx as u32)),
                ("scheme", Json::str("lr-seluge")),
            ],
            &grid[2 * i + 1],
        );
        tb.row(vec![
            format!("{n_rx}"),
            format!("{s_ana:.1}"),
            format!("{lr_ana:.1}"),
            format!("{s_sim:.1}"),
            format!("{lr_sim:.1}"),
        ]);
    }
    println!("{}", tb.render());
    println!("wrote {}", write_csv("fig3b", &tb));
    println!("wrote {}", jb.write());
}

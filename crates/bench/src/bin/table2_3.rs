//! Tables II and III: multi-hop 15×15 grid networks.
//!
//! Table II uses the high-density ("tight") grid, Table III the
//! low-density ("medium") grid — our regenerated equivalents of the
//! TinyOS `15-15-{tight,medium}-mica2-grid.txt` topologies — under
//! heavy bursty noise standing in for the `meyer-heavy` trace. Expected
//! shape: LR-Seluge beats Seluge on every metric by a significant
//! margin, as in the one-hop case.

use lr_seluge::LrSelugeParams;
use lrs_bench::{
    aggregate, configured_threads, matched_seluge_params, run_lr, run_seluge, sample_grid,
    write_csv, Json, JsonReport, RunSpec, Table,
};
use lrs_netsim::medium::MediumConfig;
use lrs_netsim::noise::{BurstyNoise, NoiseModel};
use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;

fn grid_spec(spacing: f64, seed: u64) -> RunSpec {
    RunSpec {
        topology: Topology::grid(15, spacing, seed),
        medium: MediumConfig {
            app_loss: 0.0,
            noise: NoiseModel::Bursty(BurstyNoise::heavy()),
            ..MediumConfig::default()
        },
        deadline: Duration::from_secs(400_000),
        engine: Default::default(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds = 1;
    let threads = configured_threads();
    let lr = if quick {
        LrSelugeParams {
            image_len: 4 * 1024,
            ..LrSelugeParams::default()
        }
    } else {
        LrSelugeParams::default()
    };
    let seluge = matched_seluge_params(&lr);

    let cases = [
        ("Table II", "high (tight grid)", 8.0f64),
        ("Table III", "low (medium grid)", 15.0),
    ];
    // Interleaved (grid, scheme) jobs: even rows LR-Seluge, odd Seluge.
    let points: Vec<(f64, bool)> = cases
        .iter()
        .flat_map(|&(_, _, spacing)| [(spacing, true), (spacing, false)])
        .collect();
    let grid = sample_grid(&points, seeds, threads, |&(spacing, is_lr), seed| {
        if is_lr {
            run_lr(&grid_spec(spacing, seed), lr, seed)
        } else {
            run_seluge(&grid_spec(spacing, seed), seluge, seed)
        }
    });

    let mut t = Table::new(vec![
        "table",
        "density",
        "scheme",
        "completed",
        "data_pkts",
        "snack_pkts",
        "adv_pkts",
        "total_kbytes",
        "latency_s",
    ]);
    let mut j = JsonReport::new("table2_3", seeds, threads);
    for (i, &(label, name, _)) in cases.iter().enumerate() {
        println!(
            "{label}: 15x15 grid, {name}, image {} KB, bursty noise",
            lr.image_len / 1024
        );
        let m_lr = aggregate(&grid[2 * i]);
        let m_s = aggregate(&grid[2 * i + 1]);
        j.push_row(
            &[
                ("table", Json::str(label)),
                ("scheme", Json::str("lr-seluge")),
            ],
            &grid[2 * i],
        );
        j.push_row(
            &[("table", Json::str(label)), ("scheme", Json::str("seluge"))],
            &grid[2 * i + 1],
        );
        for (scheme, m) in [("lr-seluge", &m_lr), ("seluge", &m_s)] {
            t.row(vec![
                label.to_string(),
                name.to_string(),
                scheme.to_string(),
                format!("{:.2}", m.completed),
                format!("{:.0}", m.data_pkts),
                format!("{:.0}", m.snack_pkts),
                format!("{:.0}", m.adv_pkts),
                format!("{:.1}", m.total_bytes / 1024.0),
                format!("{:.1}", m.latency_s),
            ]);
        }
        println!(
            "  LR saves {:.1} % data pkts, {:.1} % bytes, {:.1} % latency\n",
            100.0 * (1.0 - m_lr.data_pkts / m_s.data_pkts),
            100.0 * (1.0 - m_lr.total_bytes / m_s.total_bytes),
            100.0 * (1.0 - m_lr.latency_s / m_s.latency_s),
        );
    }
    println!("{}", t.render());
    println!("wrote {}", write_csv("table2_3", &t));
    println!("wrote {}", j.write());
}

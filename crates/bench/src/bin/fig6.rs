//! Figure 6: impact of the erasure-coding rate `n/k` on LR-Seluge
//! (one-hop, N = 20, `k` fixed at 32), under several loss rates.
//!
//! Expected shape (§VI-B-3): moving from `n = k` (no redundancy) to a
//! moderate rate slashes SNACK and data traffic; pushing the rate
//! further slowly *raises* cost again, because the chained-hash region
//! `n·8` eats into each page's image capacity, adding pages.

use lr_seluge::LrSelugeParams;
use lrs_bench::{
    aggregate, configured_threads, run_lr, sample_grid, write_csv, Json, JsonReport, RunSpec, Table,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds = if quick { 1 } else { 3 };
    let threads = configured_threads();
    let base = if quick {
        LrSelugeParams {
            image_len: 4 * 1024,
            ..LrSelugeParams::default()
        }
    } else {
        LrSelugeParams::default()
    };
    let n_rx = 20usize;

    println!(
        "Fig 6: one-hop, N = {n_rx}, k = {}, image {} KB, sweep n (seeds = {seeds}, threads = {threads})\n",
        base.k,
        base.image_len / 1024
    );
    let loss_rates: &[f64] = if quick {
        &[0.1, 0.3]
    } else {
        &[0.05, 0.1, 0.2, 0.3]
    };
    let ns: &[u16] = if quick {
        &[32, 48, 64]
    } else {
        &[32, 36, 40, 44, 48, 56, 64]
    };
    let points: Vec<(f64, u16)> = loss_rates
        .iter()
        .flat_map(|&p| ns.iter().map(move |&n| (p, n)))
        .collect();
    let grid = sample_grid(&points, seeds, threads, |&(p, n), seed| {
        let params = LrSelugeParams { n, ..base };
        run_lr(&RunSpec::one_hop(n_rx, p), params, seed)
    });

    let mut t = Table::new(vec![
        "p",
        "n",
        "rate",
        "pages",
        "data_pkts",
        "snack_pkts",
        "adv_pkts",
        "total_kbytes",
        "latency_s",
    ]);
    let mut j = JsonReport::new("fig6", seeds, threads);
    for (i, &(p, n)) in points.iter().enumerate() {
        let params = LrSelugeParams { n, ..base };
        let m = aggregate(&grid[i]);
        j.push_row(
            &[
                ("p", Json::num(p)),
                ("n", Json::num(n)),
                ("rate", Json::num(n as f64 / base.k as f64)),
            ],
            &grid[i],
        );
        t.row(vec![
            format!("{p:.2}"),
            format!("{n}"),
            format!("{:.2}", n as f64 / base.k as f64),
            format!("{}", params.pages()),
            format!("{:.0}", m.data_pkts),
            format!("{:.0}", m.snack_pkts),
            format!("{:.0}", m.adv_pkts),
            format!("{:.1}", m.total_bytes / 1024.0),
            format!("{:.1}", m.latency_s),
        ]);
    }
    println!("{}", t.render());
    println!("wrote {}", write_csv("fig6", &t));
    println!("wrote {}", j.write());
}

//! Figure 6: impact of the erasure-coding rate `n/k` on LR-Seluge
//! (one-hop, N = 20, `k` fixed at 32), under several loss rates.
//!
//! Expected shape (§VI-B-3): moving from `n = k` (no redundancy) to a
//! moderate rate slashes SNACK and data traffic; pushing the rate
//! further slowly *raises* cost again, because the chained-hash region
//! `n·8` eats into each page's image capacity, adding pages.

use lr_seluge::LrSelugeParams;
use lrs_bench::{average, run_lr, write_csv, RunSpec, Table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds = if quick { 1 } else { 3 };
    let base = if quick {
        LrSelugeParams {
            image_len: 4 * 1024,
            ..LrSelugeParams::default()
        }
    } else {
        LrSelugeParams::default()
    };
    let n_rx = 20usize;

    let mut t = Table::new(vec![
        "p", "n", "rate", "pages", "data_pkts", "snack_pkts", "adv_pkts", "total_kbytes",
        "latency_s",
    ]);
    println!(
        "Fig 6: one-hop, N = {n_rx}, k = {}, image {} KB, sweep n (seeds = {seeds})\n",
        base.k,
        base.image_len / 1024
    );
    let loss_rates: &[f64] = if quick { &[0.1, 0.3] } else { &[0.05, 0.1, 0.2, 0.3] };
    let ns: &[u16] = if quick { &[32, 48, 64] } else { &[32, 36, 40, 44, 48, 56, 64] };
    for &p in loss_rates {
        for &n in ns {
            let params = LrSelugeParams { n, ..base };
            let spec = RunSpec::one_hop(n_rx, p);
            let m = average(seeds, |seed| run_lr(&spec, params, seed));
            t.row(vec![
                format!("{p:.2}"),
                format!("{n}"),
                format!("{:.2}", n as f64 / base.k as f64),
                format!("{}", params.pages()),
                format!("{:.0}", m.data_pkts),
                format!("{:.0}", m.snack_pkts),
                format!("{:.0}", m.adv_pkts),
                format!("{:.1}", m.total_bytes / 1024.0),
                format!("{:.1}", m.latency_s),
            ]);
        }
    }
    println!("{}", t.render());
    println!("wrote {}", write_csv("fig6", &t));
}

//! Diagnostic probe for large-N one-hop LR-Seluge runs.
//!
//! Usage: `probe [N] [seed] [p] [--trace=FILE.jsonl]`
//!
//! `probe --kernels` prints the GF(256) and SHA-256 kernels this CPU
//! supports, which one runtime dispatch selected, and the env knobs
//! (`LRS_GF_KERNEL` / `LRS_SHA_KERNEL`) that force a choice — then
//! exits. Scripts use it to record the compute configuration of a run.
//!
//! With `--trace=FILE`, every simulator event (tx/rx/loss-with-cause,
//! timers, completions, protocol notes) is streamed to `FILE` as JSON
//! Lines, and a closing `"ev":"metrics"` summary line is appended.
//! Attaching the trace is observational only — the run's metrics are
//! identical with and without it.
use lr_seluge::{Deployment, LrSelugeParams};
use lrs_bench::runner::test_image;
use lrs_bench::{write_json, Json};
use lrs_deluge::engine::Scheme as _;
use lrs_netsim::medium::MediumConfig;
use lrs_netsim::node::{NodeId, PacketKind};
use lrs_netsim::sim::SimConfig;

use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;
use lrs_netsim::trace::JsonlTrace;
use lrs_netsim::SimBuilder;
use std::io::Write as _;

fn main() {
    if std::env::args().any(|a| a == "--kernels") {
        let gf: Vec<&str> = lrs_erasure::kernel::Kernel::supported()
            .into_iter()
            .map(|k| k.name())
            .collect();
        let sha: Vec<&str> = lrs_crypto::sha256_mb::ShaKernel::supported()
            .into_iter()
            .map(|k| k.name())
            .collect();
        println!(
            "gf256 kernels: [{}] active={} (force with LRS_GF_KERNEL)",
            gf.join(", "),
            lrs_erasure::kernel::Kernel::active().name()
        );
        println!(
            "sha256 kernels: [{}] active={} (force with LRS_SHA_KERNEL)",
            sha.join(", "),
            lrs_crypto::sha256_mb::ShaKernel::active().name()
        );
        return;
    }
    let positional: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .collect();
    let trace_path: Option<String> = std::env::args()
        .find_map(|a| a.strip_prefix("--trace=").map(str::to_string))
        .or_else(|| std::env::var("LRS_TRACE_FILE").ok());
    let n_rx: usize = positional
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(35);
    let seed: u64 = positional.get(1).and_then(|a| a.parse().ok()).unwrap_or(1);
    let p_loss: f64 = positional
        .get(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.1);
    let params = LrSelugeParams::default(); // 20 KB
    let image = test_image(params.image_len);
    let deployment = Deployment::new(&image, params, b"probe");
    let cfg = SimConfig {
        medium: MediumConfig {
            app_loss: p_loss,
            ..MediumConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = SimBuilder::new(Topology::star(n_rx + 1), seed, |id| {
        deployment.node(id, NodeId(0))
    })
    .config(cfg)
    .build();
    if let Some(path) = &trace_path {
        sim.set_trace(Box::new(
            JsonlTrace::create(path).expect("create trace file"),
        ));
    }
    let report = sim.run(Duration::from_secs(100_000));
    if let Some(path) = &trace_path {
        // Drop the sink (flushing it), then append the closing metrics
        // summary line so tools can key on `"ev":"metrics"`.
        let now = sim.now();
        let line = sim.metrics().to_trace_json(now);
        drop(sim.take_trace());
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .expect("reopen trace file");
        writeln!(f, "{line}").expect("append metrics line");
        eprintln!("trace written to {path}");
    }
    let m = sim.metrics();
    println!(
        "N={n_rx} seed={seed} p={p_loss} complete={} latency={:?} data={} hp={} snack={} adv={} coll={} phy={} app={}",
        report.all_complete, report.latency,
        m.tx_packets(PacketKind::Data), m.tx_packets(PacketKind::HashPage),
        m.tx_packets(PacketKind::Snack), m.tx_packets(PacketKind::Adv),
        m.collision_losses(), m.phy_losses(), m.app_drops()
    );
    let mut per_item_completion: Vec<(u32, u16)> = Vec::new();
    for i in 0..=n_rx as u32 {
        let node = sim.node(NodeId(i));
        let s = node.stats();
        per_item_completion.push((i, node.scheme().complete_items()));
        if s.gave_up > 0 || s.snacks_sent > 60 || s.out_of_order_drops > 200 {
            println!(
                "  node {i}: level={} snacks={} data_sent={} advs={} dup={} ooo={} gave_up={}",
                node.scheme().complete_items(),
                s.snacks_sent,
                s.data_sent,
                s.advs_sent,
                s.duplicates,
                s.out_of_order_drops,
                s.gave_up
            );
        }
    }
    let total_snacks: u64 = (0..=n_rx as u32)
        .map(|i| sim.node(NodeId(i)).stats().snacks_sent)
        .sum();
    let total_gaveup: u64 = (0..=n_rx as u32)
        .map(|i| sim.node(NodeId(i)).stats().gave_up)
        .sum();
    let total_dup: u64 = (0..=n_rx as u32)
        .map(|i| sim.node(NodeId(i)).stats().duplicates)
        .sum();
    println!("totals: snacks={total_snacks} gave_up={total_gaveup} duplicates={total_dup}");

    // Machine-readable single-run summary alongside the other bins'
    // results files (one run, so samples are singletons by design).
    let num = |v: f64| Json::Num(v);
    let report_json = Json::Obj(vec![
        ("experiment".into(), Json::str("probe")),
        (
            "params".into(),
            Json::Obj(vec![
                ("N".into(), num(n_rx as f64)),
                ("seed".into(), num(seed as f64)),
                ("p".into(), num(p_loss)),
            ]),
        ),
        (
            "metrics".into(),
            Json::Obj(vec![
                ("complete".into(), Json::Bool(report.all_complete)),
                (
                    "latency_s".into(),
                    num(report.latency.map_or(f64::NAN, |t| t.as_secs_f64())),
                ),
                (
                    "data_pkts".into(),
                    num(m.tx_packets(PacketKind::Data) as f64),
                ),
                (
                    "hash_page_pkts".into(),
                    num(m.tx_packets(PacketKind::HashPage) as f64),
                ),
                (
                    "snack_pkts".into(),
                    num(m.tx_packets(PacketKind::Snack) as f64),
                ),
                ("adv_pkts".into(), num(m.tx_packets(PacketKind::Adv) as f64)),
                ("collision_losses".into(), num(m.collision_losses() as f64)),
                ("phy_losses".into(), num(m.phy_losses() as f64)),
                ("app_drops".into(), num(m.app_drops() as f64)),
                ("total_snacks".into(), num(total_snacks as f64)),
                ("gave_up".into(), num(total_gaveup as f64)),
                ("duplicates".into(), num(total_dup as f64)),
            ]),
        ),
    ]);
    println!("wrote {}", write_json("probe", &report_json));
}

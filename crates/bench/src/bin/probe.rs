//! Diagnostic probe for large-N one-hop LR-Seluge runs.
use lr_seluge::{Deployment, LrSelugeParams};
use lrs_bench::runner::test_image;
use lrs_deluge::engine::Scheme as _;
use lrs_netsim::medium::MediumConfig;
use lrs_netsim::node::{NodeId, PacketKind};
use lrs_netsim::sim::{SimConfig, Simulator};
use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;

fn main() {
    let n_rx: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(35);
    let seed: u64 = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(1);
    let p_loss: f64 = std::env::args().nth(3).and_then(|a| a.parse().ok()).unwrap_or(0.1);
    let params = LrSelugeParams::default(); // 20 KB
    let image = test_image(params.image_len);
    let deployment = Deployment::new(&image, params, b"probe");
    let cfg = SimConfig {
        medium: MediumConfig { app_loss: p_loss, ..MediumConfig::default() },
    };
    let mut sim = Simulator::new(Topology::star(n_rx + 1), cfg, seed, |id| {
        deployment.node(id, NodeId(0))
    });
    let report = sim.run(Duration::from_secs(100_000));
    let m = sim.metrics();
    println!(
        "N={n_rx} seed={seed} p={p_loss} complete={} latency={:?} data={} hp={} snack={} adv={} coll={} phy={} app={}",
        report.all_complete, report.latency,
        m.tx_packets(PacketKind::Data), m.tx_packets(PacketKind::HashPage),
        m.tx_packets(PacketKind::Snack), m.tx_packets(PacketKind::Adv),
        m.collision_losses(), m.phy_losses(), m.app_drops()
    );
    let mut per_item_completion: Vec<(u32, u16)> = Vec::new();
    for i in 0..=n_rx as u32 {
        let node = sim.node(NodeId(i));
        let s = node.stats();
        per_item_completion.push((i, node.scheme().complete_items()));
        if s.gave_up > 0 || s.snacks_sent > 60 || s.out_of_order_drops > 200 {
            println!(
                "  node {i}: level={} snacks={} data_sent={} advs={} dup={} ooo={} gave_up={}",
                node.scheme().complete_items(), s.snacks_sent, s.data_sent, s.advs_sent,
                s.duplicates, s.out_of_order_drops, s.gave_up
            );
        }
    }
    let total_snacks: u64 = (0..=n_rx as u32).map(|i| sim.node(NodeId(i)).stats().snacks_sent).sum();
    let total_gaveup: u64 = (0..=n_rx as u32).map(|i| sim.node(NodeId(i)).stats().gave_up).sum();
    let total_dup: u64 = (0..=n_rx as u32).map(|i| sim.node(NodeId(i)).stats().duplicates).sum();
    println!("totals: snacks={total_snacks} gave_up={total_gaveup} duplicates={total_dup}");
}

//! Figure 4: impact of the packet-loss rate `p` (one-hop, N = 20,
//! 20 KB image) on the five metrics: (a) data packets, (b) SNACK
//! packets, (c) advertisement packets, (d) total bytes, (e) latency —
//! LR-Seluge vs Seluge.
//!
//! Expected shape (§VI-B-1): both grow with `p`; LR-Seluge slightly
//! worse at `p ≤ 0.01` (erasure redundancy costs extra pages), clearly
//! better for `p > 0.01`, with ~44 % byte savings and ~48 % latency
//! savings at `p = 0.4`.

use lr_seluge::LrSelugeParams;
use lrs_bench::{
    aggregate, configured_threads, matched_seluge_params, run_lr, run_seluge, sample_grid,
    write_csv, Json, JsonReport, RunSpec, Table,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds = if quick { 1 } else { 3 };
    let threads = configured_threads();
    let lr = if quick {
        LrSelugeParams {
            image_len: 4 * 1024,
            ..LrSelugeParams::default()
        }
    } else {
        LrSelugeParams::default() // 20 KB
    };
    let seluge = matched_seluge_params(&lr);
    let n_rx = 20usize;

    let ps = [0.0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5];
    // Interleaved (point, scheme) jobs: even rows LR-Seluge, odd Seluge.
    let points: Vec<(f64, bool)> = ps.iter().flat_map(|&p| [(p, true), (p, false)]).collect();
    println!(
        "Fig 4: one-hop, N = {n_rx}, image {} KB, sweep p (seeds = {seeds}, threads = {threads})\n",
        lr.image_len / 1024
    );
    let grid = sample_grid(&points, seeds, threads, |&(p, is_lr), seed| {
        let spec = RunSpec::one_hop(n_rx, p);
        if is_lr {
            run_lr(&spec, lr, seed)
        } else {
            run_seluge(&spec, seluge, seed)
        }
    });

    let mut t = Table::new(vec![
        "p",
        "scheme",
        "data_pkts",
        "snack_pkts",
        "adv_pkts",
        "total_kbytes",
        "latency_s",
    ]);
    let mut j = JsonReport::new("fig4", seeds, threads);
    for (i, &p) in ps.iter().enumerate() {
        let m_lr = aggregate(&grid[2 * i]);
        let m_s = aggregate(&grid[2 * i + 1]);
        j.push_row(
            &[("p", Json::num(p)), ("scheme", Json::str("lr-seluge"))],
            &grid[2 * i],
        );
        j.push_row(
            &[("p", Json::num(p)), ("scheme", Json::str("seluge"))],
            &grid[2 * i + 1],
        );
        for (name, m) in [("lr-seluge", &m_lr), ("seluge", &m_s)] {
            t.row(vec![
                format!("{p:.2}"),
                name.to_string(),
                format!("{:.0}", m.data_pkts),
                format!("{:.0}", m.snack_pkts),
                format!("{:.0}", m.adv_pkts),
                format!("{:.1}", m.total_bytes / 1024.0),
                format!("{:.1}", m.latency_s),
            ]);
        }
        let save = 100.0 * (1.0 - m_lr.total_bytes / m_s.total_bytes);
        let save_lat = 100.0 * (1.0 - m_lr.latency_s / m_s.latency_s);
        println!("p = {p:<4}: LR saves {save:5.1} % bytes, {save_lat:5.1} % latency");
    }
    println!("\n{}", t.render());
    println!("wrote {}", write_csv("fig4", &t));
    println!("wrote {}", j.write());
}

//! Design-choice ablations.
//!
//! 1. **Scheduler** — LR-Seluge with the greedy round-robin tracking
//!    table (§IV-D-3) vs the same protocol with the Deluge/Seluge
//!    union-of-bit-vectors rule. Isolates how much of LR-Seluge's win
//!    comes from the scheduler rather than from erasure coding alone.
//! 2. **Erasure code** — Reed-Solomon (`k' = k`) vs the XOR code
//!    (`k' = k + ε`): the reception-overhead cost of XOR-only decoding.

use lr_seluge::{CodeKind, Deployment, GreedyRoundRobinPolicy, LrSelugeParams};
use lrs_bench::runner::test_image;
use lrs_bench::{write_csv, Table};
use lrs_deluge::policy::UnionPolicy;
use lrs_netsim::medium::MediumConfig;
use lrs_netsim::node::{NodeId, PacketKind, Protocol};
use lrs_netsim::sim::{SimConfig, Simulator};
use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;

fn run_with<P, F>(params: LrSelugeParams, p_loss: f64, seed: u64, make_policy: F) -> (f64, f64, f64)
where
    P: lrs_deluge::policy::TxPolicy,
    F: Fn() -> P,
    lrs_deluge::engine::DisseminationNode<lr_seluge::LrScheme, P>: Protocol,
{
    let image = test_image(params.image_len);
    let deployment = Deployment::new(&image, params, b"ablation");
    let cfg = SimConfig {
        medium: MediumConfig {
            app_loss: p_loss,
            ..MediumConfig::default()
        },
    };
    let mut sim = Simulator::new(Topology::star(21), cfg, seed, |id| {
        deployment.node_with_policy(id, NodeId(0), make_policy())
    });
    let report = sim.run(Duration::from_secs(100_000));
    assert!(report.all_complete, "run stalled");
    (
        sim.metrics().tx_packets(PacketKind::Data) as f64,
        sim.metrics().total_tx_bytes() as f64,
        report.latency.expect("complete").as_secs_f64(),
    )
}

fn avg3(mut f: impl FnMut(u64) -> (f64, f64, f64)) -> (f64, f64, f64) {
    let mut acc = (0.0, 0.0, 0.0);
    for seed in 1..=3 {
        let r = f(seed);
        acc = (acc.0 + r.0 / 3.0, acc.1 + r.1 / 3.0, acc.2 + r.2 / 3.0);
    }
    acc
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = LrSelugeParams {
        image_len: if quick { 4 * 1024 } else { 20 * 1024 },
        ..LrSelugeParams::default()
    };

    // --- Ablation 1: scheduler ---------------------------------------
    println!("Ablation 1: greedy round-robin scheduler vs union rule (N = 20)\n");
    let mut t = Table::new(vec!["p", "policy", "data_pkts", "total_kbytes", "latency_s"]);
    for p in [0.1, 0.3] {
        let greedy = avg3(|s| run_with(params, p, s, GreedyRoundRobinPolicy::new));
        let union = avg3(|s| run_with(params, p, s, UnionPolicy::new));
        for (name, m) in [("greedy", greedy), ("union", union)] {
            t.row(vec![
                format!("{p}"),
                name.to_string(),
                format!("{:.0}", m.0),
                format!("{:.1}", m.1 / 1024.0),
                format!("{:.1}", m.2),
            ]);
        }
        println!(
            "p = {p}: scheduler saves {:.1} % data packets",
            100.0 * (1.0 - greedy.0 / union.0)
        );
    }
    println!("\n{}", t.render());
    println!("wrote {}\n", write_csv("ablation_scheduler", &t));

    // --- Ablation 2: erasure code ------------------------------------
    println!("Ablation 2: Reed-Solomon (k' = k) vs sparse XOR (k' = k + 4)\n");
    let mut t2 = Table::new(vec!["p", "code", "k_prime", "data_pkts", "total_kbytes", "latency_s"]);
    for p in [0.1, 0.3] {
        for kind in [CodeKind::ReedSolomon, CodeKind::SparseXor, CodeKind::Lt] {
            let kp = LrSelugeParams { code_kind: kind, ..params };
            let m = avg3(|s| run_with(kp, p, s, GreedyRoundRobinPolicy::new));
            t2.row(vec![
                format!("{p}"),
                format!("{kind:?}"),
                format!("{}", kp.k_prime()),
                format!("{:.0}", m.0),
                format!("{:.1}", m.1 / 1024.0),
                format!("{:.1}", m.2),
            ]);
        }
    }
    println!("{}", t2.render());
    println!("wrote {}", write_csv("ablation_code", &t2));
}

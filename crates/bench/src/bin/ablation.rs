//! Design-choice ablations.
//!
//! 1. **Scheduler** — LR-Seluge with the greedy round-robin tracking
//!    table (§IV-D-3) vs the same protocol with the Deluge/Seluge
//!    union-of-bit-vectors rule. Isolates how much of LR-Seluge's win
//!    comes from the scheduler rather than from erasure coding alone.
//! 2. **Erasure code** — Reed-Solomon (`k' = k`) vs the XOR code
//!    (`k' = k + ε`): the reception-overhead cost of XOR-only decoding.

use lr_seluge::{CodeKind, Deployment, GreedyRoundRobinPolicy, LrSelugeParams};
use lrs_bench::runner::test_image;
use lrs_bench::{
    aggregate, configured_threads, sample_grid, write_csv, ExperimentMetrics, Json, JsonReport,
    Table,
};
use lrs_deluge::policy::UnionPolicy;
use lrs_netsim::medium::MediumConfig;
use lrs_netsim::node::{NodeId, PacketKind, Protocol};
use lrs_netsim::sim::SimConfig;

use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;
use lrs_netsim::SimBuilder;

fn run_with<P, F>(
    params: LrSelugeParams,
    p_loss: f64,
    seed: u64,
    make_policy: F,
) -> ExperimentMetrics
where
    P: lrs_deluge::policy::TxPolicy + 'static,
    F: Fn() -> P,
    lrs_deluge::engine::DisseminationNode<lr_seluge::LrScheme, P>: Protocol,
{
    let image = test_image(params.image_len);
    let deployment = Deployment::new(&image, params, b"ablation");
    let cfg = SimConfig {
        medium: MediumConfig {
            app_loss: p_loss,
            ..MediumConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = SimBuilder::new(Topology::star(21), seed, |id| {
        deployment.node_with_policy(id, NodeId(0), make_policy())
    })
    .config(cfg)
    .build();
    let report = sim.run(Duration::from_secs(100_000));
    assert!(report.all_complete, "run stalled");
    let m = sim.metrics();
    ExperimentMetrics {
        page_data_pkts: m.tx_packets(PacketKind::Data) as f64,
        data_pkts: (m.tx_packets(PacketKind::Data)
            + m.tx_packets(PacketKind::HashPage)
            + m.tx_packets(PacketKind::Signature)) as f64,
        snack_pkts: m.tx_packets(PacketKind::Snack) as f64,
        adv_pkts: m.tx_packets(PacketKind::Adv) as f64,
        total_bytes: m.total_tx_bytes() as f64,
        latency_s: report.latency.expect("complete").as_secs_f64(),
        completed: 1.0,
        ..ExperimentMetrics::default()
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds = 3;
    let threads = configured_threads();
    let params = LrSelugeParams {
        image_len: if quick { 4 * 1024 } else { 20 * 1024 },
        ..LrSelugeParams::default()
    };

    // --- Ablation 1: scheduler ---------------------------------------
    println!(
        "Ablation 1: greedy round-robin scheduler vs union rule (N = 20, threads = {threads})\n"
    );
    let policies = ["greedy", "union"];
    let points: Vec<(f64, usize)> = [0.1, 0.3]
        .iter()
        .flat_map(|&p| (0..policies.len()).map(move |i| (p, i)))
        .collect();
    let grid = sample_grid(&points, seeds, threads, |&(p, policy), seed| match policy {
        0 => run_with(params, p, seed, GreedyRoundRobinPolicy::new),
        _ => run_with(params, p, seed, UnionPolicy::new),
    });
    let mut t = Table::new(vec![
        "p",
        "policy",
        "data_pkts",
        "total_kbytes",
        "latency_s",
    ]);
    let mut j = JsonReport::new("ablation_scheduler", seeds, threads);
    for (i, &(p, policy)) in points.iter().enumerate() {
        let m = aggregate(&grid[i]);
        j.push_row(
            &[("p", Json::num(p)), ("policy", Json::str(policies[policy]))],
            &grid[i],
        );
        t.row(vec![
            format!("{p}"),
            policies[policy].to_string(),
            format!("{:.0}", m.page_data_pkts),
            format!("{:.1}", m.total_bytes / 1024.0),
            format!("{:.1}", m.latency_s),
        ]);
        if policy == 1 {
            let greedy = aggregate(&grid[i - 1]);
            println!(
                "p = {p}: scheduler saves {:.1} % data packets",
                100.0 * (1.0 - greedy.page_data_pkts / m.page_data_pkts)
            );
        }
    }
    println!("\n{}", t.render());
    println!("wrote {}", write_csv("ablation_scheduler", &t));
    println!("wrote {}\n", j.write());

    // --- Ablation 2: erasure code ------------------------------------
    println!("Ablation 2: Reed-Solomon (k' = k) vs sparse XOR (k' = k + 4)\n");
    let kinds = [CodeKind::ReedSolomon, CodeKind::SparseXor, CodeKind::Lt];
    let points: Vec<(f64, CodeKind)> = [0.1, 0.3]
        .iter()
        .flat_map(|&p| kinds.iter().map(move |&kind| (p, kind)))
        .collect();
    let grid = sample_grid(&points, seeds, threads, |&(p, kind), seed| {
        let kp = LrSelugeParams {
            code_kind: kind,
            ..params
        };
        run_with(kp, p, seed, GreedyRoundRobinPolicy::new)
    });
    let mut t2 = Table::new(vec![
        "p",
        "code",
        "k_prime",
        "data_pkts",
        "total_kbytes",
        "latency_s",
    ]);
    let mut j2 = JsonReport::new("ablation_code", seeds, threads);
    for (i, &(p, kind)) in points.iter().enumerate() {
        let kp = LrSelugeParams {
            code_kind: kind,
            ..params
        };
        let m = aggregate(&grid[i]);
        j2.push_row(
            &[
                ("p", Json::num(p)),
                ("code", Json::str(format!("{kind:?}"))),
                ("k_prime", Json::num(kp.k_prime() as u32)),
            ],
            &grid[i],
        );
        t2.row(vec![
            format!("{p}"),
            format!("{kind:?}"),
            format!("{}", kp.k_prime()),
            format!("{:.0}", m.page_data_pkts),
            format!("{:.1}", m.total_bytes / 1024.0),
            format!("{:.1}", m.latency_s),
        ]);
    }
    println!("{}", t2.render());
    println!("wrote {}", write_csv("ablation_code", &t2));
    println!("wrote {}", j2.write());
}

//! Computation overhead (§V-B): cryptographic and coding work per
//! receiver for LR-Seluge vs Seluge over one full image.
//!
//! The paper's qualitative claims: both schemes verify exactly one
//! signature per image (guarded by the puzzle); both hash every received
//! data packet once; LR-Seluge additionally pays one erasure decode per
//! page at every node and one encode per page at every *serving* node —
//! the price of loss resilience, affordable because the codes are
//! GF(256) table arithmetic (see `cargo bench -p lrs-bench` for the
//! per-operation costs).

use lr_seluge::{Deployment, LrSelugeParams};
use lrs_bench::runner::test_image;
use lrs_bench::{matched_seluge_params, write_csv, Table};
use lrs_crypto::cluster::ClusterKey;
use lrs_crypto::puzzle::{Puzzle, PuzzleKeyChain};
use lrs_crypto::schnorr::Keypair;
use lrs_deluge::engine::{CryptoCost, DisseminationNode, EngineConfig, Scheme};
use lrs_deluge::policy::UnionPolicy;
use lrs_netsim::medium::MediumConfig;
use lrs_netsim::node::NodeId;
use lrs_netsim::sim::{SimConfig, Simulator};
use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;
use lrs_seluge::{SelugeArtifacts, SelugeParams, SelugeScheme};

fn mean_receiver_cost<S: Scheme, P: lrs_deluge::policy::TxPolicy>(
    sim: &Simulator<DisseminationNode<S, P>>,
) -> CryptoCost {
    let n = sim.topology().len();
    let mut acc = CryptoCost::default();
    for i in 1..n {
        let c = sim.node(NodeId(i as u32)).scheme().cost();
        acc.hashes += c.hashes;
        acc.signature_verifications += c.signature_verifications;
        acc.puzzle_checks += c.puzzle_checks;
        acc.decodes += c.decodes;
        acc.encodes += c.encodes;
    }
    let d = (n - 1) as u64;
    CryptoCost {
        hashes: acc.hashes / d,
        signature_verifications: acc.signature_verifications / d,
        puzzle_checks: acc.puzzle_checks / d,
        decodes: acc.decodes / d,
        encodes: acc.encodes / d,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let image_len = if quick { 4 * 1024 } else { 20 * 1024 };
    let p_loss = 0.2f64;
    let n_rx = 10usize;
    let lr_params = LrSelugeParams {
        image_len,
        ..LrSelugeParams::default()
    };
    let s_params: SelugeParams = matched_seluge_params(&lr_params);
    let image = test_image(image_len);
    let cfg = SimConfig {
        medium: MediumConfig {
            app_loss: p_loss,
            ..MediumConfig::default()
        },
    };

    // LR-Seluge run.
    let deployment = Deployment::new(&image, lr_params, b"overhead");
    let mut lr_sim = Simulator::new(Topology::star(n_rx + 1), cfg, 5, |id| {
        deployment.node(id, NodeId(0))
    });
    assert!(lr_sim.run(Duration::from_secs(100_000)).all_complete);
    let lr_cost = mean_receiver_cost(&lr_sim);

    // Seluge run.
    let kp = Keypair::from_seed(b"overhead");
    let chain = PuzzleKeyChain::generate(b"overhead", 4);
    let artifacts = SelugeArtifacts::build(&image, s_params, &kp, &chain);
    let puzzle = Puzzle::new(chain.anchor(), s_params.puzzle_strength);
    let key = ClusterKey::derive(b"overhead", 0);
    let mut s_sim = Simulator::new(Topology::star(n_rx + 1), cfg, 5, |id| {
        let scheme = if id == NodeId(0) {
            SelugeScheme::base(&artifacts, kp.public(), puzzle)
        } else {
            SelugeScheme::receiver(s_params, kp.public(), puzzle)
        };
        DisseminationNode::new(scheme, UnionPolicy::new(), key.clone(), EngineConfig::default())
    });
    assert!(s_sim.run(Duration::from_secs(100_000)).all_complete);
    let s_cost = mean_receiver_cost(&s_sim);

    println!(
        "Computation overhead per receiver: one-hop, N = {n_rx}, p = {p_loss}, image {} KB\n",
        image_len / 1024
    );
    let mut t = Table::new(vec![
        "scheme", "hashes", "sig_verifications", "puzzle_checks", "decodes", "encodes",
    ]);
    for (name, c) in [("lr-seluge", lr_cost), ("seluge", s_cost)] {
        t.row(vec![
            name.to_string(),
            format!("{}", c.hashes),
            format!("{}", c.signature_verifications),
            format!("{}", c.puzzle_checks),
            format!("{}", c.decodes),
            format!("{}", c.encodes),
        ]);
    }
    println!("{}", t.render());
    println!("wrote {}", write_csv("overhead", &t));
    assert_eq!(lr_cost.signature_verifications, 1);
    assert_eq!(s_cost.signature_verifications, 1);
}

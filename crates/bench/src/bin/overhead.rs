//! Computation overhead (§V-B): cryptographic and coding work per
//! receiver for LR-Seluge vs Seluge over one full image.
//!
//! The paper's qualitative claims: both schemes verify exactly one
//! signature per image (guarded by the puzzle); both hash every received
//! data packet once; LR-Seluge additionally pays one erasure decode per
//! page at every node and one encode per page at every *serving* node —
//! the price of loss resilience, affordable because the codes are
//! GF(256) table arithmetic (see `cargo bench -p lrs-bench` for the
//! per-operation costs).

use lr_seluge::{Deployment, LrSelugeParams};
use lrs_bench::runner::test_image;
use lrs_bench::{
    configured_threads, matched_seluge_params, sample_grid, stat_json, write_csv, write_json, Json,
    Table,
};
use lrs_crypto::cluster::ClusterKey;
use lrs_crypto::puzzle::{Puzzle, PuzzleKeyChain};
use lrs_crypto::schnorr::Keypair;
use lrs_deluge::engine::{CryptoCost, DisseminationNode, EngineConfig, Scheme};
use lrs_deluge::policy::UnionPolicy;
use lrs_netsim::medium::MediumConfig;
use lrs_netsim::node::NodeId;
use lrs_netsim::sim::{SimConfig, Simulator};

use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;
use lrs_netsim::SimBuilder;
use lrs_seluge::{SelugeArtifacts, SelugeParams, SelugeScheme};

fn mean_receiver_cost<S: Scheme, P: lrs_deluge::policy::TxPolicy>(
    sim: &Simulator<DisseminationNode<S, P>>,
) -> CryptoCost {
    let n = sim.topology().len();
    let mut acc = CryptoCost::default();
    for i in 1..n {
        let c = sim.node(NodeId(i as u32)).scheme().cost();
        acc.hashes += c.hashes;
        acc.signature_verifications += c.signature_verifications;
        acc.puzzle_checks += c.puzzle_checks;
        acc.decodes += c.decodes;
        acc.encodes += c.encodes;
    }
    let d = (n - 1) as u64;
    CryptoCost {
        hashes: acc.hashes / d,
        signature_verifications: acc.signature_verifications / d,
        puzzle_checks: acc.puzzle_checks / d,
        decodes: acc.decodes / d,
        encodes: acc.encodes / d,
        ..CryptoCost::default()
    }
}

const COST_NAMES: [&str; 5] = [
    "hashes",
    "sig_verifications",
    "puzzle_checks",
    "decodes",
    "encodes",
];

fn cost_fields(c: &CryptoCost) -> [f64; 5] {
    [
        c.hashes as f64,
        c.signature_verifications as f64,
        c.puzzle_checks as f64,
        c.decodes as f64,
        c.encodes as f64,
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds = if quick { 1 } else { 3 };
    let threads = configured_threads();
    let image_len = if quick { 4 * 1024 } else { 20 * 1024 };
    let p_loss = 0.2f64;
    let n_rx = 10usize;
    let lr_params = LrSelugeParams {
        image_len,
        ..LrSelugeParams::default()
    };
    let s_params: SelugeParams = matched_seluge_params(&lr_params);
    let image = test_image(image_len);
    let cfg = SimConfig {
        medium: MediumConfig {
            app_loss: p_loss,
            ..MediumConfig::default()
        },
        ..SimConfig::default()
    };

    // Interleaved (scheme) points: row 0 LR-Seluge, row 1 Seluge.
    let schemes = [true, false];
    let costs = sample_grid(&schemes, seeds, threads, |&is_lr, seed| {
        if is_lr {
            let deployment = Deployment::new(&image, lr_params, b"overhead");
            let mut sim = SimBuilder::new(Topology::star(n_rx + 1), seed, |id| {
                deployment.node(id, NodeId(0))
            })
            .config(cfg)
            .build();
            assert!(sim.run(Duration::from_secs(100_000)).all_complete);
            mean_receiver_cost(&sim)
        } else {
            let kp = Keypair::from_seed(b"overhead");
            let chain = PuzzleKeyChain::generate(b"overhead", 4);
            let artifacts = SelugeArtifacts::build(&image, s_params, &kp, &chain);
            let puzzle = Puzzle::new(chain.anchor(), s_params.puzzle_strength);
            let key = ClusterKey::derive(b"overhead", 0);
            let mut sim = SimBuilder::new(Topology::star(n_rx + 1), seed, |id| {
                let scheme = if id == NodeId(0) {
                    SelugeScheme::base(&artifacts, kp.public(), puzzle)
                } else {
                    SelugeScheme::receiver(s_params, kp.public(), puzzle)
                };
                DisseminationNode::new(
                    scheme,
                    UnionPolicy::new(),
                    key.clone(),
                    EngineConfig::default(),
                )
            })
            .config(cfg)
            .build();
            assert!(sim.run(Duration::from_secs(100_000)).all_complete);
            mean_receiver_cost(&sim)
        }
    });

    println!(
        "Computation overhead per receiver: one-hop, N = {n_rx}, p = {p_loss}, image {} KB (seeds = {seeds}, threads = {threads})\n",
        image_len / 1024
    );
    let mut t = Table::new(vec![
        "scheme",
        "hashes",
        "sig_verifications",
        "puzzle_checks",
        "decodes",
        "encodes",
    ]);
    let mut rows = Vec::new();
    for (i, name) in [(0usize, "lr-seluge"), (1, "seluge")] {
        let samples: Vec<[f64; 5]> = costs[i].iter().map(cost_fields).collect();
        // Exactly one expensive signature verification per receiver per
        // image, every seed — the puzzle's whole point.
        for c in &costs[i] {
            assert_eq!(c.signature_verifications, 1);
        }
        let mean = |f: usize| samples.iter().map(|s| s[f]).sum::<f64>() / samples.len() as f64;
        t.row(vec![
            name.to_string(),
            format!("{:.0}", mean(0)),
            format!("{:.0}", mean(1)),
            format!("{:.0}", mean(2)),
            format!("{:.0}", mean(3)),
            format!("{:.0}", mean(4)),
        ]);
        let metrics: Vec<(String, Json)> = COST_NAMES
            .iter()
            .enumerate()
            .map(|(f, cname)| {
                let vals: Vec<f64> = samples.iter().map(|s| s[f]).collect();
                (cname.to_string(), stat_json(&vals))
            })
            .collect();
        rows.push(Json::Obj(vec![
            (
                "params".into(),
                Json::Obj(vec![("scheme".into(), Json::str(name))]),
            ),
            ("metrics".into(), Json::Obj(metrics)),
        ]));
    }
    println!("{}", t.render());
    println!("wrote {}", write_csv("overhead", &t));
    let report = Json::Obj(vec![
        ("experiment".into(), Json::str("overhead")),
        ("threads".into(), Json::num(threads as u32)),
        ("seeds".into(), Json::num(seeds as u32)),
        ("rows".into(), Json::Arr(rows)),
    ]);
    println!("wrote {}", write_json("overhead", &report));
}

//! Image-size sweep (§VI-C: "we have simulated the impact of different
//! image sizes in both one-hop and multi-hop networks and observed
//! similar advantages of LR-Seluge over Seluge").

use lr_seluge::LrSelugeParams;
use lrs_bench::{
    aggregate, configured_threads, matched_seluge_params, run_lr, run_seluge, sample_grid,
    write_csv, Json, JsonReport, RunSpec, Table,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds = if quick { 1 } else { 3 };
    let threads = configured_threads();
    let p = 0.2f64;
    let n_rx = 20usize;
    let sizes: &[usize] = if quick {
        &[4 * 1024, 16 * 1024]
    } else {
        &[4 * 1024, 10 * 1024, 20 * 1024, 40 * 1024, 80 * 1024]
    };

    println!(
        "Image-size sweep: one-hop, N = {n_rx}, p = {p} (seeds = {seeds}, threads = {threads})\n"
    );
    // Interleaved (point, scheme) jobs: even rows LR-Seluge, odd Seluge.
    let points: Vec<(usize, bool)> = sizes
        .iter()
        .flat_map(|&s| [(s, true), (s, false)])
        .collect();
    let grid = sample_grid(&points, seeds, threads, |&(size, is_lr), seed| {
        let lr = LrSelugeParams {
            image_len: size,
            ..LrSelugeParams::default()
        };
        let spec = RunSpec::one_hop(n_rx, p);
        if is_lr {
            run_lr(&spec, lr, seed)
        } else {
            run_seluge(&spec, matched_seluge_params(&lr), seed)
        }
    });

    let mut t = Table::new(vec![
        "image_kb",
        "scheme",
        "data_pkts",
        "total_kbytes",
        "latency_s",
        "byte_saving_pct",
    ]);
    let mut j = JsonReport::new("imgsize", seeds, threads);
    for (i, &size) in sizes.iter().enumerate() {
        let m_lr = aggregate(&grid[2 * i]);
        let m_s = aggregate(&grid[2 * i + 1]);
        j.push_row(
            &[
                ("image_kb", Json::num((size / 1024) as u32)),
                ("scheme", Json::str("lr-seluge")),
            ],
            &grid[2 * i],
        );
        j.push_row(
            &[
                ("image_kb", Json::num((size / 1024) as u32)),
                ("scheme", Json::str("seluge")),
            ],
            &grid[2 * i + 1],
        );
        let saving = 100.0 * (1.0 - m_lr.total_bytes / m_s.total_bytes);
        for (name, m) in [("lr-seluge", &m_lr), ("seluge", &m_s)] {
            t.row(vec![
                format!("{}", size / 1024),
                name.to_string(),
                format!("{:.0}", m.data_pkts),
                format!("{:.1}", m.total_bytes / 1024.0),
                format!("{:.1}", m.latency_s),
                if name == "lr-seluge" {
                    format!("{saving:.1}")
                } else {
                    "-".to_string()
                },
            ]);
        }
    }
    println!("{}", t.render());
    println!("wrote {}", write_csv("imgsize", &t));
    println!("wrote {}", j.write());
}

//! Image-size sweep (§VI-C: "we have simulated the impact of different
//! image sizes in both one-hop and multi-hop networks and observed
//! similar advantages of LR-Seluge over Seluge").

use lr_seluge::LrSelugeParams;
use lrs_bench::{average, matched_seluge_params, run_lr, run_seluge, write_csv, RunSpec, Table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds = if quick { 1 } else { 3 };
    let p = 0.2f64;
    let n_rx = 20usize;
    let sizes: &[usize] = if quick {
        &[4 * 1024, 16 * 1024]
    } else {
        &[4 * 1024, 10 * 1024, 20 * 1024, 40 * 1024, 80 * 1024]
    };

    let mut t = Table::new(vec![
        "image_kb", "scheme", "data_pkts", "total_kbytes", "latency_s", "byte_saving_pct",
    ]);
    println!("Image-size sweep: one-hop, N = {n_rx}, p = {p} (seeds = {seeds})\n");
    for &size in sizes {
        let lr = LrSelugeParams {
            image_len: size,
            ..LrSelugeParams::default()
        };
        let spec = RunSpec::one_hop(n_rx, p);
        let m_lr = average(seeds, |seed| run_lr(&spec, lr, seed));
        let m_s = average(seeds, |seed| run_seluge(&spec, matched_seluge_params(&lr), seed));
        let saving = 100.0 * (1.0 - m_lr.total_bytes / m_s.total_bytes);
        for (name, m) in [("lr-seluge", &m_lr), ("seluge", &m_s)] {
            t.row(vec![
                format!("{}", size / 1024),
                name.to_string(),
                format!("{:.0}", m.data_pkts),
                format!("{:.1}", m.total_bytes / 1024.0),
                format!("{:.1}", m.latency_s),
                if name == "lr-seluge" {
                    format!("{saving:.1}")
                } else {
                    "-".to_string()
                },
            ]);
        }
    }
    println!("{}", t.render());
    println!("wrote {}", write_csv("imgsize", &t));
}

//! Campaign front-end: checkpointed Monte-Carlo fleets over a grid spec.
//!
//! ```text
//! campaign --spec <file> [--out <dir>] [--threads N] [--kill-after K]
//!     Start a campaign from a TOML/JSON grid spec (see
//!     `lrs_bench::spec`). Writes <dir>/manifest.json, streams per-job
//!     records into <dir>/jobs.log, and on completion emits
//!     <dir>/report.json with per-cell mean/95% CI/p50/p95. The default
//!     <dir> is results/campaign-<name>. --kill-after stops (without a
//!     report) after K new jobs — the knob CI uses to exercise crash
//!     recovery deterministically.
//!
//! campaign --resume <dir> [--threads N] [--kill-after K]
//!     Reopen a campaign from its manifest: completed jobs are loaded
//!     from jobs.log (torn final lines from a kill -9 are discarded),
//!     only the remainder executes, and the final report is
//!     byte-identical to an uninterrupted run.
//!
//! campaign --export-job <id> (--spec <file> | --resume <dir>)
//!     Print job <id> as a replay capsule (JSONL) without running it —
//!     any grid point is a bit-exact reproducer for the `replay` bin.
//!     With --spec the grid is built in memory: no campaign directory
//!     is created or required.
//!
//! campaign --smoke [--kill-after K]
//!     CI gate: a built-in 24-job grid (both schemes × two loss rates ×
//!     quiet/crashy faults × 3 seeds) into results/campaign-smoke.
//! ```
//!
//! Jobs that end diagnostically (stalled, invariant violated, worker
//! panicked) dump failure capsules under `<dir>/failures/`, loadable by
//! `replay --replay`.

use lrs_bench::campaign::{Campaign, CampaignReport, JOB_LOG, REPORT};
use lrs_bench::capsules::replay_capsule;
use lrs_bench::{CampaignSpec, Cli, Json};
use lrs_netsim::capsule::EngineDigest;
use std::path::PathBuf;
use std::process::ExitCode;

/// The CI smoke grid: small enough for one core, wide enough to cover
/// both schemes, a lossy cell, and a crash-faulted cell.
const SMOKE_SPEC: &str = r#"
name = "smoke"
schemes = ["lr-seluge", "seluge"]
topologies = ["star:6"]
loss_ppm = [50_000, 200_000]
faults = ["none", "crash=0.5"]
seeds = 3
image_bytes = 768
deadline_s = 3000
"#;

const FLAGS: &[lrs_bench::cli::Flag] = &[
    lrs_bench::cli::flag("--smoke", "CI gate: the built-in 24-job grid"),
    lrs_bench::cli::valued("--spec", "start a campaign from a TOML/JSON grid spec"),
    lrs_bench::cli::valued(
        "--resume",
        "reopen a campaign directory and run the remainder",
    ),
    lrs_bench::cli::valued(
        "--out",
        "campaign directory (default: results/campaign-<name>)",
    ),
    lrs_bench::cli::valued(
        "--threads",
        "worker threads (default: LRS_THREADS or all cores)",
    ),
    lrs_bench::cli::valued("--kill-after", "stop (without a report) after K new jobs"),
    lrs_bench::cli::valued(
        "--export-job",
        "print job <id> as a replay capsule and exit",
    ),
];

fn parse_spec(cli: &Cli) -> Result<CampaignSpec, String> {
    let (text, source) = if cli.smoke() {
        (SMOKE_SPEC.to_string(), "built-in smoke grid".to_string())
    } else if let Some(path) = cli.value("--spec") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read spec {path}: {e}"))?;
        (text, path.to_string())
    } else {
        return Err(format!(
            "no grid given; pass --spec, --resume, or --smoke\n{}",
            cli.usage()
        ));
    };
    CampaignSpec::parse(&text).map_err(|e| format!("{source}: {e}"))
}

fn open_campaign(cli: &Cli) -> Result<Campaign, String> {
    if let Some(dir) = cli.value("--resume") {
        return Campaign::resume(dir);
    }
    let spec = parse_spec(cli)?;
    let dir = cli
        .value("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results").join(format!("campaign-{}", spec.name)));
    Campaign::create(spec, dir)
}

/// The campaign for `--export-job`: exporting is a pure function of
/// the grid, so a `--spec`/`--smoke` invocation builds the campaign in
/// memory — it must not create (or collide with) an on-disk campaign
/// directory as a side effect. `--resume` still reads the manifest.
fn export_campaign(cli: &Cli) -> Result<Campaign, String> {
    if let Some(dir) = cli.value("--resume") {
        return Campaign::resume(dir);
    }
    Ok(Campaign::offline(parse_spec(cli)?, PathBuf::new()))
}

fn print_summary(campaign: &Campaign, report: &CampaignReport) {
    println!(
        "campaign {:?}: {} jobs over {} cells -> {}",
        campaign.spec().name,
        report.jobs,
        campaign.spec().cells().len(),
        campaign.dir().join(REPORT).display()
    );
    if report.failures.is_empty() {
        println!("no failures");
    } else {
        println!("{} failure capsule(s):", report.failures.len());
        for path in &report.failures {
            println!("  {path}");
        }
    }
    // One line per cell: outcome counts plus headline latency.
    if let Some(cells) = report.json.get("cells").and_then(Json::as_arr) {
        for cell in cells {
            let params = cell.get("params");
            let fmt = |key: &str| {
                params
                    .and_then(|p| p.get(key))
                    .map(|v| match v {
                        Json::Str(s) => s.clone(),
                        other => other.render(),
                    })
                    .unwrap_or_default()
            };
            let mean_of = |metric: &str| {
                cell.get("metrics")
                    .and_then(|m| m.get(metric))
                    .and_then(|l| l.get("mean"))
                    .and_then(Json::as_num)
                    .unwrap_or(f64::NAN)
            };
            let complete = cell
                .get("outcomes")
                .and_then(|o| o.get("complete"))
                .and_then(Json::as_num)
                .unwrap_or(0.0);
            let jobs = cell.get("jobs").and_then(Json::as_num).unwrap_or(0.0);
            println!(
                "  {} {} loss={}ppm fault={} attacker={}: {}/{} complete, mean latency {:.1} s, \
                 completion {:.2}, verify-ops/node {:.1}",
                fmt("scheme"),
                fmt("topology"),
                fmt("loss_ppm"),
                fmt("fault"),
                fmt("attacker"),
                complete,
                jobs,
                mean_of("latency_s"),
                mean_of("completion_frac"),
                mean_of("verify_inflation"),
            );
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let cli = Cli::parse("campaign", FLAGS).map_err(|e| e.to_string())?;
    if let Some(job) = cli
        .parsed::<usize>("--export-job")
        .map_err(|e| e.to_string())?
    {
        let campaign = export_campaign(&cli)?;
        let mut capsule = campaign.job_capsule(job)?;
        // Execute the job once to pin its digest, so `replay --replay`
        // has something to verify against.
        let run = replay_capsule(&capsule, &capsule.engine.clone(), capsule.shards)?;
        capsule.digests.push(EngineDigest {
            engine: run.engine,
            shards: run.shards,
            digest: run.digest,
        });
        print!("{}", capsule.to_jsonl());
        return Ok(ExitCode::SUCCESS);
    }

    let campaign = open_campaign(&cli)?;
    let threads = cli.threads().map_err(|e| e.to_string())?;
    let kill_after = cli
        .parsed::<usize>("--kill-after")
        .map_err(|e| e.to_string())?;
    let total = campaign.total_jobs();
    let already = campaign.completed()?.len();
    println!(
        "campaign {:?}: {total} jobs ({} cells x {} seeds), {already} already logged, {threads} thread(s)",
        campaign.spec().name,
        campaign.spec().cells().len(),
        campaign.spec().seeds,
    );

    match campaign.run(threads, kill_after)? {
        Some(report) => {
            print_summary(&campaign, &report);
            Ok(ExitCode::SUCCESS)
        }
        None => {
            let done = campaign.completed()?.len();
            println!(
                "stopped after --kill-after: {done}/{total} jobs logged in {}; \
                 finish with: campaign --resume {}",
                campaign.dir().join(JOB_LOG).display(),
                campaign.dir().display(),
            );
            Ok(ExitCode::SUCCESS)
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("campaign: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Campaign front-end: checkpointed Monte-Carlo fleets over a grid spec.
//!
//! ```text
//! campaign --spec <file> [--out <dir>] [--threads N] [--kill-after K]
//!     Start a campaign from a TOML/JSON grid spec (see
//!     `lrs_bench::spec`). Writes <dir>/manifest.json, streams per-job
//!     records into <dir>/jobs.log, and on completion emits
//!     <dir>/report.json with per-cell mean/95% CI/p50/p95. The default
//!     <dir> is results/campaign-<name>. --kill-after stops (without a
//!     report) after K new jobs — the knob CI uses to exercise crash
//!     recovery deterministically.
//!
//! campaign --resume <dir> [--threads N] [--kill-after K]
//!     Reopen a campaign from its manifest: completed jobs are loaded
//!     from jobs.log (torn final lines from a kill -9 are discarded),
//!     only the remainder executes, and the final report is
//!     byte-identical to an uninterrupted run.
//!
//! campaign --export-job <id> (--spec <file> | --resume <dir>)
//!     Print job <id> as a replay capsule (JSONL) without running it —
//!     any grid point is a bit-exact reproducer for the `replay` bin.
//!     With --spec the grid is built in memory: no campaign directory
//!     is created or required.
//!
//! campaign --smoke [--kill-after K]
//!     CI gate: a built-in 24-job grid (both schemes × two loss rates ×
//!     quiet/crashy faults × 3 seeds) into results/campaign-smoke.
//! ```
//!
//! Jobs that end diagnostically (stalled, invariant violated, worker
//! panicked) dump failure capsules under `<dir>/failures/`, loadable by
//! `replay --replay`.

use lrs_bench::campaign::{Campaign, CampaignReport, JOB_LOG, REPORT};
use lrs_bench::capsules::replay_capsule;
use lrs_bench::{configured_threads, CampaignSpec, Json};
use lrs_netsim::capsule::EngineDigest;
use std::path::PathBuf;
use std::process::ExitCode;

/// The CI smoke grid: small enough for one core, wide enough to cover
/// both schemes, a lossy cell, and a crash-faulted cell.
const SMOKE_SPEC: &str = r#"
name = "smoke"
schemes = ["lr-seluge", "seluge"]
topologies = ["star:6"]
loss_ppm = [50_000, 200_000]
faults = ["none", "crash=0.5"]
seeds = 3
image_bytes = 768
deadline_s = 3000
"#;

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn arg_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

fn parse_spec() -> Result<CampaignSpec, String> {
    let (text, source) = if arg_flag("--smoke") {
        (SMOKE_SPEC.to_string(), "built-in smoke grid".to_string())
    } else if let Some(path) = arg_value("--spec") {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("read spec {path}: {e}"))?;
        (text, path)
    } else {
        return Err("usage: campaign --spec <file> | --resume <dir> | --smoke \
             [--out <dir>] [--threads N] [--kill-after K] [--export-job <id>]"
            .to_string());
    };
    CampaignSpec::parse(&text).map_err(|e| format!("{source}: {e}"))
}

fn open_campaign() -> Result<Campaign, String> {
    if let Some(dir) = arg_value("--resume") {
        return Campaign::resume(dir);
    }
    let spec = parse_spec()?;
    let dir = arg_value("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results").join(format!("campaign-{}", spec.name)));
    Campaign::create(spec, dir)
}

/// The campaign for `--export-job`: exporting is a pure function of
/// the grid, so a `--spec`/`--smoke` invocation builds the campaign in
/// memory — it must not create (or collide with) an on-disk campaign
/// directory as a side effect. `--resume` still reads the manifest.
fn export_campaign() -> Result<Campaign, String> {
    if let Some(dir) = arg_value("--resume") {
        return Campaign::resume(dir);
    }
    Ok(Campaign::offline(parse_spec()?, PathBuf::new()))
}

fn print_summary(campaign: &Campaign, report: &CampaignReport) {
    println!(
        "campaign {:?}: {} jobs over {} cells -> {}",
        campaign.spec().name,
        report.jobs,
        campaign.spec().cells().len(),
        campaign.dir().join(REPORT).display()
    );
    if report.failures.is_empty() {
        println!("no failures");
    } else {
        println!("{} failure capsule(s):", report.failures.len());
        for path in &report.failures {
            println!("  {path}");
        }
    }
    // One line per cell: outcome counts plus headline latency.
    if let Some(cells) = report.json.get("cells").and_then(Json::as_arr) {
        for cell in cells {
            let params = cell.get("params");
            let fmt = |key: &str| {
                params
                    .and_then(|p| p.get(key))
                    .map(|v| match v {
                        Json::Str(s) => s.clone(),
                        other => other.render(),
                    })
                    .unwrap_or_default()
            };
            let mean_of = |metric: &str| {
                cell.get("metrics")
                    .and_then(|m| m.get(metric))
                    .and_then(|l| l.get("mean"))
                    .and_then(Json::as_num)
                    .unwrap_or(f64::NAN)
            };
            let complete = cell
                .get("outcomes")
                .and_then(|o| o.get("complete"))
                .and_then(Json::as_num)
                .unwrap_or(0.0);
            let jobs = cell.get("jobs").and_then(Json::as_num).unwrap_or(0.0);
            println!(
                "  {} {} loss={}ppm fault={} attacker={}: {}/{} complete, mean latency {:.1} s, \
                 completion {:.2}, verify-ops/node {:.1}",
                fmt("scheme"),
                fmt("topology"),
                fmt("loss_ppm"),
                fmt("fault"),
                fmt("attacker"),
                complete,
                jobs,
                mean_of("latency_s"),
                mean_of("completion_frac"),
                mean_of("verify_inflation"),
            );
        }
    }
}

fn run() -> Result<ExitCode, String> {
    if let Some(id) = arg_value("--export-job") {
        let campaign = export_campaign()?;
        let job: usize = id
            .parse()
            .map_err(|e| format!("bad --export-job {id}: {e}"))?;
        let mut capsule = campaign.job_capsule(job)?;
        // Execute the job once to pin its digest, so `replay --replay`
        // has something to verify against.
        let run = replay_capsule(&capsule, &capsule.engine.clone(), capsule.shards)?;
        capsule.digests.push(EngineDigest {
            engine: run.engine,
            shards: run.shards,
            digest: run.digest,
        });
        print!("{}", capsule.to_jsonl());
        return Ok(ExitCode::SUCCESS);
    }

    let campaign = open_campaign()?;
    let threads = configured_threads();
    let kill_after = match arg_value("--kill-after") {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|e| format!("bad --kill-after {v}: {e}"))?,
        ),
        None => None,
    };
    let total = campaign.total_jobs();
    let already = campaign.completed()?.len();
    println!(
        "campaign {:?}: {total} jobs ({} cells x {} seeds), {already} already logged, {threads} thread(s)",
        campaign.spec().name,
        campaign.spec().cells().len(),
        campaign.spec().seeds,
    );

    match campaign.run(threads, kill_after)? {
        Some(report) => {
            print_summary(&campaign, &report);
            Ok(ExitCode::SUCCESS)
        }
        None => {
            let done = campaign.completed()?.len();
            println!(
                "stopped after --kill-after: {done}/{total} jobs logged in {}; \
                 finish with: campaign --resume {}",
                campaign.dir().join(JOB_LOG).display(),
                campaign.dir().display(),
            );
            Ok(ExitCode::SUCCESS)
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("campaign: {e}");
            ExitCode::FAILURE
        }
    }
}

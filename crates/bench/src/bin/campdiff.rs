//! Statistical diff of two campaign reports — the regression referee.
//!
//! ```text
//! campdiff --a <report.json> --b <report.json> [--alpha F] [--out <file>]
//!          [--inject metric=factor]
//!     Pairs the two campaigns' cells by canonical key (scheme ×
//!     topology × loss_ppm × fault × attacker), Welch-tests every
//!     paired metric with Benjamini–Hochberg FDR control across the
//!     whole grid, prints a table of significant differences, and
//!     writes the machine-readable JSON diff to --out when given.
//!
//!     --inject multiplies the named metric's mean by `factor` in
//!     report B *after* loading — a synthetic regression the CI gate
//!     uses to prove the engine detects what it is supposed to detect.
//!
//! Exit codes: 0 = no significant regression, 2 = at least one
//! significant regression, 1 = usage or input error.
//! ```
//!
//! Self-diffing any report exits 0 with zero significant differences by
//! construction (every delta is exactly 0).

use lrs_bench::cli::{flag, valued, Flag};
use lrs_bench::diff::{diff_reports, ReportDoc, DEFAULT_ALPHA};
use lrs_bench::Cli;
use std::process::ExitCode;

const FLAGS: &[Flag] = &[
    valued("--a", "baseline campaign report.json"),
    valued("--b", "candidate campaign report.json"),
    valued(
        "--alpha",
        "false-discovery rate for verdicts (default 0.05)",
    ),
    valued("--out", "write the machine-readable JSON diff here"),
    valued(
        "--inject",
        "metric=factor: scale a metric's mean in report B (synthetic-regression gate)",
    ),
    flag(
        "--verbose",
        "also list paired cells with no significant change",
    ),
];

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("campdiff: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let cli = Cli::parse("campdiff", FLAGS).map_err(|e| e.to_string())?;
    let path_a = cli
        .value("--a")
        .ok_or_else(|| format!("--a <report.json> is required\n{}", cli.usage()))?;
    let path_b = cli
        .value("--b")
        .ok_or_else(|| format!("--b <report.json> is required\n{}", cli.usage()))?;
    let alpha: f64 = cli
        .parsed_or("--alpha", DEFAULT_ALPHA)
        .map_err(|e| e.to_string())?;

    let a = ReportDoc::load(path_a)?;
    let mut b = ReportDoc::load(path_b)?;
    if let Some(spec) = cli.value("--inject") {
        let (metric, factor) = parse_inject(spec)?;
        let hit = b.inject(metric, factor);
        if hit == 0 {
            return Err(format!(
                "--inject: no cell in {path_b} carries metric {metric:?}"
            ));
        }
        eprintln!("campdiff: injected ×{factor} into {metric:?} across {hit} cells of B");
    }

    let diff = diff_reports(&a, &b, alpha)?;
    print!("{}", diff.render());
    if cli.flag("--verbose") {
        for cell in &diff.cells {
            let testable = cell.metrics.iter().filter(|m| m.test.is_some()).count();
            println!(
                "  [{}] {} — {} metrics compared, {} testable",
                cell.key,
                cell.verdict.label(),
                cell.metrics.len(),
                testable
            );
        }
    }
    if let Some(out) = cli.value("--out") {
        std::fs::write(out, diff.to_json().render()).map_err(|e| format!("write {out}: {e}"))?;
        println!("wrote {out}");
    }

    Ok(if diff.regressions() > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    })
}

fn parse_inject(spec: &str) -> Result<(&str, f64), String> {
    let (metric, factor) = spec
        .split_once('=')
        .ok_or_else(|| format!("--inject {spec:?}: expected metric=factor"))?;
    let factor: f64 = factor
        .parse()
        .map_err(|e| format!("--inject {spec:?}: bad factor: {e}"))?;
    if !factor.is_finite() {
        return Err(format!("--inject {spec:?}: factor must be finite"));
    }
    Ok((metric, factor))
}

//! Attack-resilience experiments (§III adversary model, §IV-E defences).
//!
//! 1. **Bogus-data flood** against LR-Seluge: every forged packet is
//!    rejected on arrival, no node ever stores a wrong byte, and
//!    dissemination completes; the same flood against plain Deluge
//!    corrupts images.
//! 2. **Forged-signature flood**: the message-specific puzzle absorbs
//!    the flood — each node still performs exactly one expensive
//!    signature verification.
//! 3. **Denial-of-receipt** by a compromised insider: without the
//!    §IV-E budget the victim keeps serving; with the per-neighbor
//!    budget its extra transmissions are capped.

use lr_seluge::{Deployment, LrSelugeParams};
use lrs_bench::runner::test_image;
use lrs_bench::{write_csv, Table};
use lrs_deluge::attack::{AttackKind, Attacker, MaybeAdversary};
use lrs_deluge::engine::{DisseminationNode, EngineConfig, Scheme};
use lrs_deluge::image::{DelugeImage, DelugeScheme, ImageParams};
use lrs_deluge::policy::UnionPolicy;
use lrs_netsim::medium::MediumConfig;
use lrs_netsim::node::NodeId;
use lrs_netsim::sim::{SimConfig, Simulator};
use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;

const N_HONEST: usize = 10;

fn params(image_len: usize) -> LrSelugeParams {
    LrSelugeParams {
        image_len,
        puzzle_strength: 10,
        ..LrSelugeParams::default()
    }
}

/// Runs LR-Seluge with one attacker node; returns
/// (all honest complete, wrong images, auth rejects, injected).
fn run_lr_under_attack(
    image_len: usize,
    kind: AttackKind,
    interval: Duration,
    budget: Option<u32>,
    seed: u64,
) -> (bool, usize, u64, u64, u64) {
    let p = params(image_len);
    let image = test_image(image_len);
    let engine = EngineConfig {
        per_neighbor_item_budget: budget,
        ..EngineConfig::default()
    };
    let deployment = Deployment::new(&image, p, b"attack keys").with_engine_config(engine);
    let insider_key = deployment.cluster_key().clone();
    let attacker_id = NodeId((N_HONEST + 1) as u32);
    let mut sim = Simulator::new(
        Topology::star(N_HONEST + 2),
        SimConfig {
            medium: MediumConfig::default(),
        },
        seed,
        |id| {
            if id == attacker_id {
                let a = match &kind {
                    AttackKind::DenialOfReceipt { .. } => {
                        Attacker::insider(kind.clone(), interval, p.version, insider_key.clone())
                    }
                    other => Attacker::outsider(other.clone(), interval, p.version),
                };
                MaybeAdversary::Attacker(a)
            } else {
                MaybeAdversary::Honest(deployment.node(id, NodeId(0)))
            }
        },
    );
    eprintln!("[attack] running scenario...");
    let report = sim.run(Duration::from_secs(20_000));
    let mut wrong = 0usize;
    let mut rejects = 0u64;
    let mut sig_verifs = 0u64;
    for i in 1..=N_HONEST as u32 {
        let node = sim.node(NodeId(i)).honest().expect("honest node");
        match node.scheme().image() {
            Some(got) if got == image => {}
            _ => wrong += 1,
        }
        let st = node.stats();
        rejects += st.auth_rejects + st.mac_rejects + st.out_of_order_drops;
        sig_verifs += node.scheme().cost().signature_verifications;
    }
    let injected = sim.node(attacker_id).attacker().expect("attacker").injected;
    (report.all_complete, wrong, rejects, sig_verifs, injected)
}

/// The same bogus-data flood against plain Deluge.
fn run_deluge_under_attack(image_len: usize, interval: Duration, seed: u64) -> (bool, usize, u64) {
    let ip = ImageParams {
        version: 1,
        image_len,
        packets_per_page: 32,
        payload_len: 72,
    };
    let image = test_image(image_len);
    let deluge_image = DelugeImage::new(image.clone(), ip);
    let key = lrs_crypto::cluster::ClusterKey::derive(b"attack keys", 0);
    let engine = EngineConfig {
        authenticate_control: false,
        ..EngineConfig::default()
    };
    let attacker_id = NodeId((N_HONEST + 1) as u32);
    let mut sim = Simulator::new(
        Topology::star(N_HONEST + 2),
        SimConfig {
            medium: MediumConfig::default(),
        },
        seed,
        |id| {
            if id == attacker_id {
                MaybeAdversary::Attacker(Attacker::outsider(
                    AttackKind::BogusData {
                        payload_len: ip.payload_len,
                        index_space: ip.packets_per_page,
                    },
                    interval,
                    1,
                ))
            } else {
                let scheme = if id == NodeId(0) {
                    DelugeScheme::base(&deluge_image)
                } else {
                    DelugeScheme::receiver(ip)
                };
                MaybeAdversary::Honest(DisseminationNode::new(
                    scheme,
                    UnionPolicy::new(),
                    key.clone(),
                    engine,
                ))
            }
        },
    );
    eprintln!("[attack] running scenario...");
    let report = sim.run(Duration::from_secs(20_000));
    let mut wrong = 0usize;
    for i in 1..=N_HONEST as u32 {
        let node = sim.node(NodeId(i)).honest().expect("honest node");
        match node.scheme().image() {
            Some(got) if got == image => {}
            _ => wrong += 1,
        }
    }
    let injected = sim.node(attacker_id).attacker().expect("attacker").injected;
    (report.all_complete, wrong, injected)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let image_len = if quick { 4 * 1024 } else { 20 * 1024 };
    let p = params(image_len);

    println!("Attack resilience, one-hop, N = {N_HONEST} honest receivers + 1 attacker\n");
    let mut t = Table::new(vec![
        "experiment", "scheme", "injected", "complete", "wrong_images", "rejects",
        "sig_verifs",
    ]);

    // 1. Bogus-data flood, increasing intensity.
    for interval_ms in [800u64, 300, 120] {
        let (ok, wrong, rejects, sig_verifs, injected) = run_lr_under_attack(
            image_len,
            AttackKind::BogusData {
                payload_len: p.payload_len,
                index_space: p.n,
            },
            Duration::from_millis(interval_ms),
            None,
            1,
        );
        t.row(vec![
            format!("bogus-data @{interval_ms}ms"),
            "lr-seluge".to_string(),
            format!("{injected}"),
            format!("{ok}"),
            format!("{wrong}"),
            format!("{rejects}"),
            format!("{sig_verifs}"),
        ]);
        assert_eq!(wrong, 0, "LR-Seluge must never store forged data");
    }
    let (ok, wrong, injected) = run_deluge_under_attack(image_len, Duration::from_millis(300), 1);
    t.row(vec![
        "bogus-data @300ms".to_string(),
        "deluge (insecure)".to_string(),
        format!("{injected}"),
        format!("{ok}"),
        format!("{wrong}"),
        "-".to_string(),
        "-".to_string(),
    ]);

    // 2. Forged-signature flood.
    let (ok, wrong, rejects, sig_verifs, injected) = run_lr_under_attack(
        image_len,
        AttackKind::ForgedSignature {
            body_len: lr_seluge::LrArtifacts::signature_body_len(),
        },
        Duration::from_millis(400),
        None,
        2,
    );
    t.row(vec![
        "forged-signature @400ms".to_string(),
        "lr-seluge".to_string(),
        format!("{injected}"),
        format!("{ok}"),
        format!("{wrong}"),
        format!("{rejects}"),
        format!("{sig_verifs}"),
    ]);
    assert_eq!(
        sig_verifs, N_HONEST as u64,
        "puzzle must limit each node to one expensive verification"
    );

    // 3. Denial-of-receipt: victim transmissions with and without budget.
    println!("Denial-of-receipt (insider SNACK flood at the base station):");
    let mut dor = Table::new(vec!["budget", "victim_data_pkts", "budget_rejections"]);
    for budget in [None, Some(3 * p.n as u32)] {
        let victim_stats = run_denial_of_receipt(image_len, budget);
        dor.row(vec![
            budget.map_or("none".to_string(), |b| b.to_string()),
            format!("{}", victim_stats.0),
            format!("{}", victim_stats.1),
        ]);
    }
    println!("{}", dor.render());

    println!("{}", t.render());
    println!("wrote {}", write_csv("attack", &t));
}

/// Runs the insider denial-of-receipt attack; returns the victim base
/// station's (data packets sent, budget rejections).
fn run_denial_of_receipt(image_len: usize, budget: Option<u32>) -> (u64, u64) {
    let p = params(image_len);
    let image = test_image(image_len);
    let engine = EngineConfig {
        per_neighbor_item_budget: budget,
        ..EngineConfig::default()
    };
    let deployment = Deployment::new(&image, p, b"attack keys").with_engine_config(engine);
    let insider_key = deployment.cluster_key().clone();
    let attacker_id = NodeId((N_HONEST + 1) as u32);
    let mut sim = Simulator::new(
        Topology::star(N_HONEST + 2),
        SimConfig {
            medium: MediumConfig::default(),
        },
        3,
        |id| {
            if id == attacker_id {
                MaybeAdversary::Attacker(Attacker::insider(
                    AttackKind::DenialOfReceipt {
                        target: NodeId(0),
                        item: 2,
                        n_bits: p.n as usize,
                    },
                    Duration::from_millis(250),
                    p.version,
                    insider_key.clone(),
                ))
            } else {
                MaybeAdversary::Honest(deployment.node(id, NodeId(0)))
            }
        },
    );
    eprintln!("[attack] running denial-of-receipt...");
    // Fixed observation window: the unbounded variant is a total DoS and
    // would otherwise run to any deadline.
    let _ = sim.run(Duration::from_secs(2_000));
    let base = sim.node(NodeId(0)).honest().expect("base");
    (base.stats().data_sent, base.stats().budget_rejections)
}

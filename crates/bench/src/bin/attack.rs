//! Attack-resilience experiments (§III adversary model, §IV-E defences).
//!
//! 1. **Bogus-data flood** against LR-Seluge: every forged packet is
//!    rejected on arrival, no node ever stores a wrong byte, and
//!    dissemination completes; the same flood against plain Deluge
//!    corrupts images.
//! 2. **Forged-signature flood**: the message-specific puzzle absorbs
//!    the flood — each node still performs exactly one expensive
//!    signature verification.
//! 3. **Denial-of-receipt** by a compromised insider: without the
//!    §IV-E budget the victim keeps serving; with the per-neighbor
//!    budget its extra transmissions are capped.
//!
//! Attackers are built from single-entry [`AttackPlan`]s through the
//! shared capsule registry (`lrs_bench::capsules`), so `--capsule <dir>`
//! arms the flight recorder: any LR-Seluge flood run that ends in a
//! diagnostic outcome drops a replay capsule whose scenario tags carry
//! the full plan.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lr_seluge::Deployment;
use lrs_bench::capsules::{attack_params, lr_attacker_profile, ScenarioTags};
use lrs_bench::runner::test_image;
use lrs_bench::{sample_grid, stat_json, write_csv, write_json, Json, Table};
use lrs_deluge::attack::{Attacker, AttackerProfile, MaybeAdversary};
use lrs_deluge::engine::{DisseminationNode, EngineConfig, Scheme};
use lrs_deluge::image::{DelugeImage, DelugeScheme, ImageParams};
use lrs_deluge::policy::UnionPolicy;
use lrs_netsim::attack::{AttackEntry, AttackPlan, AttackVector};
use lrs_netsim::medium::MediumConfig;
use lrs_netsim::node::NodeId;
use lrs_netsim::sim::SimConfig;
use lrs_netsim::time::{Duration, SimTime};
use lrs_netsim::topology::Topology;
use lrs_netsim::SimBuilder;

const N_HONEST: usize = 10;

/// Single-entry plan placing one attacker at the star's last leaf.
fn single_attacker_plan(vector: AttackVector, interval: Duration) -> AttackPlan {
    let mut plan = AttackPlan::new();
    plan.push(AttackEntry {
        node: NodeId((N_HONEST + 1) as u32),
        vector,
        at: SimTime(0),
        interval,
        burst: None,
        target: NodeId(0),
        spoof_pool: (N_HONEST + 2) as u32,
    });
    plan
}

/// One flood run's observables, as floats for summarizing over seeds.
#[derive(Clone, Copy, Debug)]
struct FloodOutcome {
    injected: f64,
    complete: f64,
    wrong: f64,
    rejects: f64,
    sig_verifs: f64,
}

const FLOOD_NAMES: [&str; 5] = [
    "injected",
    "complete",
    "wrong_images",
    "rejects",
    "sig_verifs",
];

impl FloodOutcome {
    fn fields(&self) -> [f64; 5] {
        [
            self.injected,
            self.complete,
            self.wrong,
            self.rejects,
            self.sig_verifs,
        ]
    }
}

/// Runs LR-Seluge with one plan-driven attacker node. When
/// `capsule_dir` is set and the run uses the registry's default engine
/// configuration (no §IV-E budget), the flight recorder is armed with
/// "attack"-profile scenario tags so a diagnostic outcome dumps a
/// bit-replayable capsule.
fn run_lr_under_attack(
    image_len: usize,
    vector: AttackVector,
    interval: Duration,
    budget: Option<u32>,
    seed: u64,
    capsule_dir: Option<&Path>,
) -> Result<FloodOutcome, String> {
    let p = attack_params(image_len);
    let image = test_image(image_len);
    let engine = EngineConfig {
        per_neighbor_item_budget: budget,
        ..EngineConfig::default()
    };
    let deployment = Deployment::new(&image, p, b"attack keys").with_engine_config(engine);
    let profile = lr_attacker_profile(&p, Some(deployment.cluster_key().clone()));
    let plan = single_attacker_plan(vector, interval);
    let attacker_id = NodeId((N_HONEST + 1) as u32);
    let mut builder = SimBuilder::new(Topology::star(N_HONEST + 2), seed, |id| {
        match plan.entry_for(id) {
            Some(entry) => MaybeAdversary::Attacker(Attacker::from_plan_entry(entry, &profile)),
            None => MaybeAdversary::Honest(deployment.node(id, NodeId(0))),
        }
    })
    .config(SimConfig {
        medium: MediumConfig::default(),
        ..SimConfig::default()
    });
    // Budgeted runs deviate from the registry's default engine
    // configuration, so only unbudgeted runs are capsule-armed.
    if let (Some(dir), None) = (capsule_dir, budget) {
        let name = format!(
            "attack-{}-{}ms-seed{}.jsonl",
            vector.label(),
            interval.as_micros() / 1_000,
            seed,
        );
        let tags = ScenarioTags::new("lr-seluge", "attack", image_len, "attack keys")
            .with_attack_plan(plan.clone());
        builder = builder.capsule_on_failure(dir.join(name));
        for (key, value) in tags.pairs() {
            builder = builder.scenario(key, value);
        }
    }
    let mut sim = builder.build();
    let report = sim.run(Duration::from_secs(20_000));
    let mut wrong = 0usize;
    let mut rejects = 0u64;
    let mut sig_verifs = 0u64;
    for i in 1..=N_HONEST as u32 {
        let node = sim
            .node(NodeId(i))
            .honest()
            .ok_or_else(|| format!("node {i} should be honest but is not"))?;
        match node.scheme().image() {
            Some(got) if got == image => {}
            _ => wrong += 1,
        }
        let st = node.stats();
        rejects += st.auth_rejects + st.mac_rejects + st.out_of_order_drops;
        sig_verifs += node.scheme().cost().signature_verifications;
    }
    let injected = sim
        .node(attacker_id)
        .attacker()
        .ok_or_else(|| format!("node {} should be the attacker but is not", attacker_id.0))?
        .injected;
    Ok(FloodOutcome {
        injected: injected as f64,
        complete: if report.all_complete { 1.0 } else { 0.0 },
        wrong: wrong as f64,
        rejects: rejects as f64,
        sig_verifs: sig_verifs as f64,
    })
}

/// The same bogus-data flood against plain Deluge.
fn run_deluge_under_attack(
    image_len: usize,
    interval: Duration,
    seed: u64,
) -> Result<FloodOutcome, String> {
    let ip = ImageParams {
        version: 1,
        image_len,
        packets_per_page: 32,
        payload_len: 72,
    };
    let image = test_image(image_len);
    let deluge_image = DelugeImage::new(image.clone(), ip);
    let key = lrs_crypto::cluster::ClusterKey::derive(b"attack keys", 0);
    let engine = EngineConfig {
        authenticate_control: false,
        ..EngineConfig::default()
    };
    // Plain Deluge has no signatures or puzzles; only the bogus-data
    // fields of the profile are ever read.
    let profile = AttackerProfile {
        payload_len: ip.payload_len,
        index_space: ip.packets_per_page,
        sig_body_len: 0,
        n_bits: 0,
        version: ip.version,
        cluster_key: None,
    };
    let plan = single_attacker_plan(AttackVector::BogusData, interval);
    let attacker_id = NodeId((N_HONEST + 1) as u32);
    let mut sim = SimBuilder::new(Topology::star(N_HONEST + 2), seed, |id| {
        match plan.entry_for(id) {
            Some(entry) => MaybeAdversary::Attacker(Attacker::from_plan_entry(entry, &profile)),
            None => {
                let scheme = if id == NodeId(0) {
                    DelugeScheme::base(&deluge_image)
                } else {
                    DelugeScheme::receiver(ip)
                };
                MaybeAdversary::Honest(DisseminationNode::new(
                    scheme,
                    UnionPolicy::new(),
                    key.clone(),
                    engine,
                ))
            }
        }
    })
    .config(SimConfig {
        medium: MediumConfig::default(),
        ..SimConfig::default()
    })
    .build();
    let report = sim.run(Duration::from_secs(20_000));
    let mut wrong = 0usize;
    for i in 1..=N_HONEST as u32 {
        let node = sim
            .node(NodeId(i))
            .honest()
            .ok_or_else(|| format!("node {i} should be honest but is not"))?;
        match node.scheme().image() {
            Some(got) if got == image => {}
            _ => wrong += 1,
        }
    }
    let injected = sim
        .node(attacker_id)
        .attacker()
        .ok_or_else(|| format!("node {} should be the attacker but is not", attacker_id.0))?
        .injected;
    Ok(FloodOutcome {
        injected: injected as f64,
        complete: if report.all_complete { 1.0 } else { 0.0 },
        wrong: wrong as f64,
        rejects: f64::NAN,
        sig_verifs: f64::NAN,
    })
}

/// Runs the insider denial-of-receipt attack; returns the victim base
/// station's (data packets sent, budget rejections).
fn run_denial_of_receipt(
    image_len: usize,
    budget: Option<u32>,
    seed: u64,
) -> Result<(u64, u64), String> {
    let p = attack_params(image_len);
    let image = test_image(image_len);
    let engine = EngineConfig {
        per_neighbor_item_budget: budget,
        ..EngineConfig::default()
    };
    let deployment = Deployment::new(&image, p, b"attack keys").with_engine_config(engine);
    let profile = lr_attacker_profile(&p, Some(deployment.cluster_key().clone()));
    let plan = single_attacker_plan(AttackVector::DenialOfReceipt, Duration::from_millis(250));
    let mut sim = SimBuilder::new(Topology::star(N_HONEST + 2), seed, |id| {
        match plan.entry_for(id) {
            Some(entry) => MaybeAdversary::Attacker(Attacker::from_plan_entry(entry, &profile)),
            None => MaybeAdversary::Honest(deployment.node(id, NodeId(0))),
        }
    })
    .config(SimConfig {
        medium: MediumConfig::default(),
        ..SimConfig::default()
    })
    .build();
    // Fixed observation window: the unbounded variant is a total DoS and
    // would otherwise run to any deadline.
    let _ = sim.run(Duration::from_secs(2_000));
    let base = sim
        .node(NodeId(0))
        .honest()
        .ok_or("the base station should be honest but is not")?;
    Ok((base.stats().data_sent, base.stats().budget_rejections))
}

/// A flood scenario row: (label, scheme).
#[derive(Clone)]
enum Scenario {
    LrBogus { interval_ms: u64 },
    DelugeBogus { interval_ms: u64 },
    ForgedSig { interval_ms: u64 },
}

impl Scenario {
    fn label(&self) -> String {
        match self {
            Scenario::LrBogus { interval_ms } => format!("bogus-data @{interval_ms}ms"),
            Scenario::DelugeBogus { interval_ms } => format!("bogus-data @{interval_ms}ms"),
            Scenario::ForgedSig { interval_ms } => format!("forged-signature @{interval_ms}ms"),
        }
    }

    fn scheme(&self) -> &'static str {
        match self {
            Scenario::DelugeBogus { .. } => "deluge (insecure)",
            _ => "lr-seluge",
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("attack: {e}");
            ExitCode::FAILURE
        }
    }
}

const FLAGS: &[lrs_bench::cli::Flag] = &[
    lrs_bench::cli::flag("--quick", "one seed and a smaller image"),
    lrs_bench::cli::valued(
        "--capsule",
        "arm the flight recorder on the LR-Seluge flood runs; capsules land in <dir>",
    ),
    lrs_bench::cli::valued(
        "--threads",
        "worker threads (default: LRS_THREADS or all cores)",
    ),
];

fn run() -> Result<(), String> {
    let cli = lrs_bench::Cli::parse("attack", FLAGS).map_err(|e| e.to_string())?;
    let quick = cli.quick();
    // `--capsule <dir>` arms the flight recorder on the LR-Seluge flood
    // runs: any diagnostic outcome drops a replay capsule into <dir>,
    // loadable by the `replay` binary.
    let capsule_dir: Option<PathBuf> = cli.capsule_dir();
    if let Some(dir) = &capsule_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    let seeds: u64 = if quick { 1 } else { 3 };
    let threads = cli.threads().map_err(|e| e.to_string())?;
    let image_len = if quick { 4 * 1024 } else { 20 * 1024 };
    let p = attack_params(image_len);

    println!(
        "Attack resilience, one-hop, N = {N_HONEST} honest receivers + 1 attacker (seeds = {seeds}, threads = {threads})\n"
    );
    let scenarios = [
        Scenario::LrBogus { interval_ms: 800 },
        Scenario::LrBogus { interval_ms: 300 },
        Scenario::LrBogus { interval_ms: 120 },
        Scenario::DelugeBogus { interval_ms: 300 },
        Scenario::ForgedSig { interval_ms: 400 },
    ];
    let grid = sample_grid(&scenarios, seeds, threads, |sc, seed| match *sc {
        Scenario::LrBogus { interval_ms } => run_lr_under_attack(
            image_len,
            AttackVector::BogusData,
            Duration::from_millis(interval_ms),
            None,
            seed,
            capsule_dir.as_deref(),
        ),
        Scenario::DelugeBogus { interval_ms } => {
            run_deluge_under_attack(image_len, Duration::from_millis(interval_ms), seed)
        }
        Scenario::ForgedSig { interval_ms } => run_lr_under_attack(
            image_len,
            AttackVector::ForgedSignature,
            Duration::from_millis(interval_ms),
            None,
            seed,
            capsule_dir.as_deref(),
        ),
    });

    let mut t = Table::new(vec![
        "experiment",
        "scheme",
        "injected",
        "complete",
        "wrong_images",
        "rejects",
        "sig_verifs",
    ]);
    let mut rows = Vec::new();
    for (sc, results) in scenarios.iter().zip(grid) {
        let samples = results.into_iter().collect::<Result<Vec<_>, _>>()?;
        // Security invariants hold per seed, not just on average.
        for o in &samples {
            match sc {
                Scenario::LrBogus { .. } => {
                    if o.wrong != 0.0 {
                        return Err(format!(
                            "LR-Seluge stored forged data under {} ({} wrong images)",
                            sc.label(),
                            o.wrong
                        ));
                    }
                }
                Scenario::ForgedSig { .. } => {
                    if o.sig_verifs != N_HONEST as f64 {
                        return Err(format!(
                            "puzzle must limit each node to one expensive verification; \
                             saw {} under {}",
                            o.sig_verifs,
                            sc.label()
                        ));
                    }
                }
                Scenario::DelugeBogus { .. } => {}
            }
        }
        let col = |f: usize| samples.iter().map(|o| o.fields()[f]).collect::<Vec<f64>>();
        let mean = |f: usize| {
            let v = col(f);
            v.iter().sum::<f64>() / v.len() as f64
        };
        let cell = |f: usize| {
            if mean(f).is_finite() {
                format!("{:.1}", mean(f))
            } else {
                "-".to_string()
            }
        };
        t.row(vec![
            sc.label(),
            sc.scheme().to_string(),
            cell(0),
            cell(1),
            cell(2),
            cell(3),
            cell(4),
        ]);
        let metrics: Vec<(String, Json)> = FLOOD_NAMES
            .iter()
            .enumerate()
            .map(|(f, name)| (name.to_string(), stat_json(&col(f))))
            .collect();
        rows.push(Json::Obj(vec![
            (
                "params".into(),
                Json::Obj(vec![
                    ("experiment".into(), Json::str(sc.label())),
                    ("scheme".into(), Json::str(sc.scheme())),
                ]),
            ),
            ("metrics".into(), Json::Obj(metrics)),
        ]));
    }

    // 3. Denial-of-receipt: victim transmissions with and without budget.
    println!("Denial-of-receipt (insider SNACK flood at the base station):");
    let budgets = [None, Some(3 * p.n as u32)];
    let dor_grid = sample_grid(&budgets, seeds, threads, |&budget, seed| {
        run_denial_of_receipt(image_len, budget, seed).map(|(data, rej)| (data as f64, rej as f64))
    });
    let mut dor = Table::new(vec!["budget", "victim_data_pkts", "budget_rejections"]);
    for (budget, results) in budgets.iter().zip(dor_grid) {
        let samples = results.into_iter().collect::<Result<Vec<_>, _>>()?;
        let data: Vec<f64> = samples.iter().map(|s| s.0).collect();
        let rej: Vec<f64> = samples.iter().map(|s| s.1).collect();
        dor.row(vec![
            budget.map_or("none".to_string(), |b| b.to_string()),
            format!("{:.0}", data.iter().sum::<f64>() / data.len() as f64),
            format!("{:.0}", rej.iter().sum::<f64>() / rej.len() as f64),
        ]);
        rows.push(Json::Obj(vec![
            (
                "params".into(),
                Json::Obj(vec![
                    ("experiment".into(), Json::str("denial-of-receipt")),
                    ("budget".into(), budget.map_or(Json::Null, Json::num)),
                ]),
            ),
            (
                "metrics".into(),
                Json::Obj(vec![
                    ("victim_data_pkts".into(), stat_json(&data)),
                    ("budget_rejections".into(), stat_json(&rej)),
                ]),
            ),
        ]));
    }
    println!("{}", dor.render());

    println!("{}", t.render());
    if let Some(dir) = &capsule_dir {
        println!(
            "flight recorder armed: diagnostic flood runs dump capsules to {}",
            dir.display()
        );
    }
    println!("wrote {}", write_csv("attack", &t));
    let report = Json::Obj(vec![
        ("experiment".into(), Json::str("attack")),
        ("threads".into(), Json::num(threads as u32)),
        ("seeds".into(), Json::num(seeds as u32)),
        ("rows".into(), Json::Arr(rows)),
    ]);
    println!("wrote {}", write_json("attack", &report));
    Ok(())
}

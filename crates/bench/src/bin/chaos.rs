//! Chaos experiments: a fault-intensity sweep (crash rate × link flap ×
//! packet-storm bursts) over LR-Seluge and Seluge with always-on
//! protocol invariant checking, plus a watchdog demonstration on a
//! deliberately partitioned network.
//!
//! Every run installs a per-delivery invariant checker (only
//! authenticated packets buffered, buffer occupancy within the paper's
//! `n`-packet bound, completed pages identical to preprocessing, and a
//! complete node's image byte-identical to the origin) and the
//! simulator's stall watchdog. The sweep asserts, per seed:
//!
//! * zero invariant violations on every configuration, and
//! * zero watchdog trips on non-adversarial configurations.
//!
//! `--smoke` runs a reduced grid with fixed seeds for CI; `--quick`
//! trims seeds for local iteration.

use lr_seluge::Deployment;
use lrs_bench::capsules::{
    chaos_params as params, chaos_sim_config as sim_config, storm_attacker, ScenarioTags,
};
use lrs_bench::runner::{matched_seluge_params, test_image};
use lrs_bench::{sample_grid, stat_json, write_csv, write_json, Json, Table};
use lrs_crypto::cluster::ClusterKey;
use lrs_crypto::puzzle::{Puzzle, PuzzleKeyChain};
use lrs_crypto::schnorr::Keypair;
use lrs_deluge::attack::MaybeAdversary;
use lrs_deluge::engine::{DisseminationNode, EngineConfig};
use lrs_deluge::policy::UnionPolicy;
use lrs_netsim::energy::EnergyModel;
use lrs_netsim::fault::{FaultConfig, FaultPlan};
use lrs_netsim::node::NodeId;
use lrs_netsim::sim::Outcome;

use lrs_netsim::time::{Duration, SimTime};
use lrs_netsim::topology::Topology;
use lrs_netsim::{CapsuleSpec, SimBuilder};
use lrs_seluge::{SelugeArtifacts, SelugeScheme};
use std::path::{Path, PathBuf};

/// Honest receivers; one more node is either an extra receiver or the
/// packet-storm attacker, and node 0 is the base station.
const N_HONEST: usize = 8;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SchemeKind {
    LrSeluge,
    Seluge,
}

impl SchemeKind {
    fn label(self) -> &'static str {
        match self {
            SchemeKind::LrSeluge => "lr-seluge",
            SchemeKind::Seluge => "seluge",
        }
    }
}

/// One cell of the fault-intensity grid.
#[derive(Clone, Copy, Debug)]
struct Scenario {
    scheme: SchemeKind,
    /// Per-node crash probability over the fault horizon.
    crash_rate: f64,
    /// Fraction of directed links that flap down/up.
    link_flap: f64,
    /// Whether a bursty bogus-data packet storm runs alongside.
    storm: bool,
}

/// Observables of one chaos run, as floats for seed aggregation.
#[derive(Clone, Copy, Debug)]
struct ChaosOutcome {
    complete: f64,
    unfinished: f64,
    latency_s: f64,
    reboots: f64,
    injected: f64,
    stalled: f64,
    violations: f64,
    /// Whole-network radio energy under the default CC1000 model, in
    /// joules — the graceful-degradation drain axis.
    energy_j: f64,
}

const METRIC_NAMES: [&str; 8] = [
    "complete",
    "unfinished_nodes",
    "latency_s",
    "reboots",
    "injected",
    "stalled",
    "violations",
    "energy_j",
];

impl ChaosOutcome {
    fn fields(&self) -> [f64; 8] {
        [
            self.complete,
            self.unfinished,
            self.latency_s,
            self.reboots,
            self.injected,
            self.stalled,
            self.violations,
            self.energy_j,
        ]
    }

    /// A canonical string of every field, used by the determinism check.
    fn canonical(&self) -> String {
        format!("{:?}", self.fields())
    }
}

fn fault_config(sc: &Scenario) -> FaultConfig {
    // Timescales are matched to the ~5–15 s undisturbed runs of this
    // grid so crashes and flaps actually land mid-dissemination.
    FaultConfig {
        crash_rate: sc.crash_rate,
        reboot_after: Some((Duration::from_secs(3), Duration::from_secs(8))),
        link_flap_rate: sc.link_flap,
        down_sojourn: Duration::from_secs(3),
        up_sojourn: Duration::from_secs(8),
        horizon: Duration::from_secs(20),
        protect_first: 1,
        ..FaultConfig::default()
    }
}

/// Flight-recorder spec for one sweep cell: a capsule lands in
/// `dir` under a name encoding the scenario, tagged so the `replay`
/// binary can reconstruct the node population.
fn capsule_spec(
    dir: &Path,
    sc: &Scenario,
    seed: u64,
    image_len: usize,
    attacker_id: NodeId,
) -> CapsuleSpec {
    let name = format!(
        "chaos-{}-c{:02}-f{:02}-{}-seed{}.jsonl",
        sc.scheme.label(),
        (sc.crash_rate * 100.0) as u32,
        (sc.link_flap * 100.0) as u32,
        if sc.storm { "storm" } else { "calm" },
        seed,
    );
    let mut tags = ScenarioTags::new(sc.scheme.label(), "chaos", image_len, "chaos keys");
    if sc.storm {
        tags = tags.with_attacker(attacker_id);
    }
    tags.apply(CapsuleSpec::new(dir.join(name)))
}

/// Summarizes a finished run. `images_ok(i)` reports whether honest
/// node `i` holds the correct image.
#[allow(clippy::too_many_arguments)]
fn outcome_from(
    report: &lrs_netsim::sim::RunReport,
    reboots: u64,
    injected: u64,
    violations: u64,
    unfinished: usize,
    energy_j: f64,
) -> ChaosOutcome {
    ChaosOutcome {
        complete: if report.outcome == Outcome::Complete && unfinished == 0 {
            1.0
        } else {
            0.0
        },
        unfinished: unfinished as f64,
        latency_s: report.latency.map(|t| t.as_secs_f64()).unwrap_or(f64::NAN),
        reboots: reboots as f64,
        injected: injected as f64,
        stalled: if report.outcome == Outcome::Stalled {
            1.0
        } else {
            0.0
        },
        violations: violations as f64,
        energy_j,
    }
}

/// Runs LR-Seluge under the scenario's fault plan and invariant checker.
fn run_lr_chaos(
    image_len: usize,
    sc: &Scenario,
    seed: u64,
    capsule_dir: Option<&Path>,
) -> ChaosOutcome {
    let p = params(image_len);
    let image = test_image(image_len);
    let deployment = Deployment::new(&image, p, b"chaos keys");
    let artifacts = deployment.artifacts().clone();
    let attacker_id = NodeId((N_HONEST + 1) as u32);
    let storm = sc.storm;
    let topo = Topology::star(N_HONEST + 2);
    let mut sim = SimBuilder::new(topo.clone(), seed, |id| {
        if storm && id == attacker_id {
            MaybeAdversary::Attacker(storm_attacker(p.payload_len, p.n, p.version))
        } else {
            MaybeAdversary::Honest(deployment.node(id, NodeId(0)))
        }
    })
    .config(sim_config())
    .build();
    sim.inject_faults(&FaultPlan::generate(&fault_config(sc), &topo, seed));
    if let Some(dir) = capsule_dir {
        sim.set_capsule_on_failure(capsule_spec(dir, sc, seed, image_len, attacker_id));
    }
    let check_art = artifacts.clone();
    let check_img = image.clone();
    sim.set_invariant_checker(Box::new(move |node, _id| match node.honest() {
        Some(n) => n.scheme().verify_invariants(&check_art, &check_img),
        None => Ok(()),
    }));
    let report = sim.run(Duration::from_secs(5_000));
    let mut violations = u64::from(sim.invariant_violation().is_some());
    let mut unfinished = 0usize;
    for i in 0..topo.len() as u32 {
        let id = NodeId(i);
        let Some(node) = sim.node(id).honest() else {
            continue;
        };
        // End-of-run sweep: the per-delivery checker sees every accepted
        // packet, this catches anything corrupted after the last one.
        if node.scheme().verify_invariants(&artifacts, &image).is_err() {
            violations += 1;
        }
        if node.scheme().image().as_deref() != Some(&image[..]) {
            unfinished += 1;
        }
    }
    let injected = if storm {
        sim.node(attacker_id).attacker().map_or(0, |a| a.injected)
    } else {
        0
    };
    let energy_j = sim.energy().total_joules(&EnergyModel::default());
    outcome_from(
        &report,
        sim.reboots(),
        injected,
        violations,
        unfinished,
        energy_j,
    )
}

/// Runs Seluge under the same fault plan and its invariant checker.
fn run_seluge_chaos(
    image_len: usize,
    sc: &Scenario,
    seed: u64,
    capsule_dir: Option<&Path>,
) -> ChaosOutcome {
    let sp = matched_seluge_params(&params(image_len));
    let image = test_image(image_len);
    let kp = Keypair::from_seed(b"chaos keys");
    let chain = PuzzleKeyChain::generate(b"chaos keys", sp.version as u32 + 4);
    let artifacts = SelugeArtifacts::build(&image, sp, &kp, &chain);
    let puzzle = Puzzle::new(chain.anchor(), sp.puzzle_strength);
    let key = ClusterKey::derive(b"chaos keys", 0);
    let attacker_id = NodeId((N_HONEST + 1) as u32);
    let storm = sc.storm;
    let topo = Topology::star(N_HONEST + 2);
    let mut sim = SimBuilder::new(topo.clone(), seed, |id| {
        if storm && id == attacker_id {
            MaybeAdversary::Attacker(storm_attacker(
                sp.data_payload_len(),
                sp.packets_per_page,
                sp.version,
            ))
        } else {
            let scheme = if id == NodeId(0) {
                SelugeScheme::base(&artifacts, kp.public(), puzzle)
            } else {
                SelugeScheme::receiver(sp, kp.public(), puzzle)
            };
            MaybeAdversary::Honest(DisseminationNode::new(
                scheme,
                UnionPolicy::new(),
                key.clone(),
                EngineConfig::default(),
            ))
        }
    })
    .config(sim_config())
    .build();
    sim.inject_faults(&FaultPlan::generate(&fault_config(sc), &topo, seed));
    if let Some(dir) = capsule_dir {
        sim.set_capsule_on_failure(capsule_spec(dir, sc, seed, image_len, attacker_id));
    }
    let check_art = artifacts.clone();
    let check_img = image.clone();
    sim.set_invariant_checker(Box::new(move |node, _id| match node.honest() {
        Some(n) => n.scheme().verify_invariants(&check_art, &check_img),
        None => Ok(()),
    }));
    let report = sim.run(Duration::from_secs(5_000));
    let mut violations = u64::from(sim.invariant_violation().is_some());
    let mut unfinished = 0usize;
    for i in 0..topo.len() as u32 {
        let Some(node) = sim.node(NodeId(i)).honest() else {
            continue;
        };
        if node.scheme().verify_invariants(&artifacts, &image).is_err() {
            violations += 1;
        }
        if node.scheme().image().as_deref() != Some(&image[..]) {
            unfinished += 1;
        }
    }
    let injected = if storm {
        sim.node(attacker_id).attacker().map_or(0, |a| a.injected)
    } else {
        0
    };
    let energy_j = sim.energy().total_joules(&EnergyModel::default());
    outcome_from(
        &report,
        sim.reboots(),
        injected,
        violations,
        unfinished,
        energy_j,
    )
}

fn run_scenario(
    image_len: usize,
    sc: &Scenario,
    seed: u64,
    capsule_dir: Option<&Path>,
) -> ChaosOutcome {
    match sc.scheme {
        SchemeKind::LrSeluge => run_lr_chaos(image_len, sc, seed, capsule_dir),
        SchemeKind::Seluge => run_seluge_chaos(image_len, sc, seed, capsule_dir),
    }
}

/// Deliberately partitions a network and shows the watchdog converting
/// the resulting livelock into a structured diagnostic dump — and, when
/// the flight recorder is armed, a replay capsule.
fn watchdog_demo(image_len: usize, capsule_dir: Option<&Path>) -> String {
    let p = params(image_len);
    let image = test_image(image_len);
    let deployment = Deployment::new(&image, p, b"chaos keys");
    let topo = Topology::star(4);
    let mut sim = SimBuilder::new(topo.clone(), 3, |id| deployment.node(id, NodeId(0)))
        .config(lrs_netsim::sim::SimConfig {
            stall_window: Some(Duration::from_secs(60)),
            ..sim_config()
        })
        .build();
    if let Some(dir) = capsule_dir {
        sim.set_capsule_on_failure(
            ScenarioTags::new("lr-seluge", "chaos", image_len, "chaos keys")
                .apply(CapsuleSpec::new(dir.join("chaos-watchdog-demo.jsonl"))),
        );
    }
    // Cut the base station off in both directions, forever: receivers
    // keep advertising and requesting but can never make progress.
    let mut plan = FaultPlan::new();
    for i in 1..topo.len() as u32 {
        plan.push(lrs_netsim::fault::FaultEvent::LinkDown {
            from: NodeId(0),
            to: NodeId(i),
            at: SimTime(2_000_000),
        });
        plan.push(lrs_netsim::fault::FaultEvent::LinkDown {
            from: NodeId(i),
            to: NodeId(0),
            at: SimTime(2_000_000),
        });
    }
    sim.inject_faults(&plan);
    let report = sim.run(Duration::from_secs(5_000));
    assert_eq!(
        report.outcome,
        Outcome::Stalled,
        "a partitioned network must terminate via the watchdog"
    );
    let dump = report
        .diagnostic
        .expect("a stalled run carries a diagnostic dump");
    assert!(!dump.nodes.is_empty());
    dump.to_json()
}

const FLAGS: &[lrs_bench::cli::Flag] = &[
    lrs_bench::cli::flag("--smoke", "reduced grid with fixed seeds for CI"),
    lrs_bench::cli::flag("--quick", "trimmed seeds for local iteration"),
    lrs_bench::cli::valued(
        "--capsule",
        "arm the flight recorder; diagnostic runs dump replay capsules into <dir>",
    ),
    lrs_bench::cli::valued(
        "--threads",
        "worker threads (default: LRS_THREADS or all cores)",
    ),
];

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("chaos: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), lrs_bench::CliError> {
    let cli = lrs_bench::Cli::parse("chaos", FLAGS)?;
    let (smoke, quick) = (cli.smoke(), cli.quick());
    // `--capsule <dir>` arms the flight recorder: any run that ends in
    // a diagnostic outcome drops a replay capsule into <dir>, loadable
    // by `cargo run -p lrs-bench --bin replay -- --replay <file>`.
    let capsule_dir: Option<PathBuf> = cli.capsule_dir();
    let seeds: u64 = if smoke || quick { 2 } else { 5 };
    let image_len = if smoke {
        2 * 1024
    } else if quick {
        4 * 1024
    } else {
        8 * 1024
    };
    let threads = cli.threads()?;

    println!(
        "Chaos sweep, one-hop star, N = {} honest + base (+storm attacker), image = {} KiB, seeds = {seeds}, threads = {threads}\n",
        N_HONEST,
        image_len / 1024
    );

    let crash_rates: &[f64] = if smoke {
        &[0.0, 0.5]
    } else {
        &[0.0, 0.25, 0.5]
    };
    let flap_rates: &[f64] = &[0.0, 0.4];
    let mut scenarios = Vec::new();
    for &scheme in &[SchemeKind::LrSeluge, SchemeKind::Seluge] {
        for &crash_rate in crash_rates {
            for &link_flap in flap_rates {
                for &storm in &[false, true] {
                    scenarios.push(Scenario {
                        scheme,
                        crash_rate,
                        link_flap,
                        storm,
                    });
                }
            }
        }
    }

    let grid = sample_grid(&scenarios, seeds, threads, |sc, seed| {
        run_scenario(image_len, sc, seed, capsule_dir.as_deref())
    });

    let mut t = Table::new(vec![
        "scheme",
        "crash",
        "flap",
        "storm",
        "complete",
        "unfinished",
        "latency_s",
        "reboots",
        "stalled",
        "violations",
        "energy_j",
    ]);
    let mut rows = Vec::new();
    for (sc, samples) in scenarios.iter().zip(&grid) {
        // Hard acceptance criteria hold per seed, not just on average.
        for o in samples {
            assert_eq!(
                o.violations, 0.0,
                "invariant violation under {sc:?} — protocol state corrupted"
            );
            if !sc.storm {
                assert_eq!(
                    o.stalled, 0.0,
                    "watchdog tripped on a non-adversarial config {sc:?}"
                );
            }
        }
        let col = |f: usize| samples.iter().map(|o| o.fields()[f]).collect::<Vec<f64>>();
        let mean = |f: usize| {
            let v = col(f);
            let finite: Vec<f64> = v.into_iter().filter(|x| x.is_finite()).collect();
            if finite.is_empty() {
                f64::NAN
            } else {
                finite.iter().sum::<f64>() / finite.len() as f64
            }
        };
        let cell = |f: usize| {
            if mean(f).is_finite() {
                format!("{:.1}", mean(f))
            } else {
                "-".to_string()
            }
        };
        t.row(vec![
            sc.scheme.label().to_string(),
            format!("{:.2}", sc.crash_rate),
            format!("{:.2}", sc.link_flap),
            if sc.storm { "yes" } else { "no" }.to_string(),
            cell(0),
            cell(1),
            cell(2),
            cell(3),
            cell(5),
            cell(6),
            cell(7),
        ]);
        let metrics: Vec<(String, Json)> = METRIC_NAMES
            .iter()
            .enumerate()
            .map(|(f, name)| (name.to_string(), stat_json(&col(f))))
            .collect();
        rows.push(Json::Obj(vec![
            (
                "params".into(),
                Json::Obj(vec![
                    ("scheme".into(), Json::str(sc.scheme.label())),
                    ("crash_rate".into(), Json::num(sc.crash_rate)),
                    ("link_flap".into(), Json::num(sc.link_flap)),
                    ("storm".into(), Json::num(u8::from(sc.storm))),
                ]),
            ),
            ("metrics".into(), Json::Obj(metrics)),
        ]));
    }
    println!("{}", t.render());

    // Seed determinism: the same scenario and seed must reproduce every
    // observable bit for bit.
    let probe = Scenario {
        scheme: SchemeKind::LrSeluge,
        crash_rate: 0.5,
        link_flap: 0.4,
        storm: true,
    };
    let a = run_scenario(image_len, &probe, 7, None).canonical();
    let b = run_scenario(image_len, &probe, 7, None).canonical();
    assert_eq!(a, b, "same seed must reproduce the identical outcome");
    println!("determinism: seed 7 reproduced bit-identically\n");

    // Watchdog demonstration: a partitioned network terminates with a
    // structured dump instead of spinning to the deadline.
    let dump = watchdog_demo(image_len.min(2 * 1024), capsule_dir.as_deref());
    println!("watchdog demo (partitioned star) diagnostic dump:\n{dump}\n");
    if let Some(dir) = &capsule_dir {
        println!(
            "flight recorder armed: diagnostic runs dump capsules to {} \
             (the watchdog demo always writes chaos-watchdog-demo.jsonl)\n",
            dir.display()
        );
    }

    println!("wrote {}", write_csv("chaos", &t));
    let report = Json::Obj(vec![
        ("experiment".into(), Json::str("chaos")),
        ("threads".into(), Json::num(threads as u32)),
        ("seeds".into(), Json::num(seeds as u32)),
        ("rows".into(), Json::Arr(rows)),
    ]);
    println!("wrote {}", write_json("chaos", &report));
    println!("all invariant and watchdog assertions held");
    Ok(())
}

//! Plain-text table rendering and CSV output for the experiment
//! binaries.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Writes a table as CSV under `results/` (created if missing), returning
/// the path written.
///
/// # Panics
///
/// Panics on I/O errors — the harness has nothing useful to do without
/// its output directory.
pub fn write_csv(name: &str, table: &Table) -> String {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("create csv");
    f.write_all(table.to_csv().as_bytes()).expect("write csv");
    path.display().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["p", "value"]);
        t.row(vec!["0.1", "12345"]);
        t.row(vec!["0.25", "7"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("value"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }
}

//! Campaign grid specifications.
//!
//! A campaign is described by one small spec file — TOML (the flat
//! `key = value` subset below) or JSON, auto-detected — that names the
//! parameter grid: schemes × topologies × loss rates × fault plans ×
//! attackers × seeds. [`CampaignSpec`] is the validated in-memory form;
//! its [`to_json`](CampaignSpec::to_json) rendering is embedded
//! verbatim in the campaign manifest so `campaign --resume <dir>` never
//! needs the original spec file (or risks it having been edited).
//!
//! ```toml
//! # mini Fig. 3 grid
//! name = "fig3-mini"
//! schemes = ["lr-seluge", "seluge"]
//! topologies = ["star:10"]
//! loss_ppm = [100000, 200000, 300000]
//! seeds = 8
//! ```
//!
//! Axis tokens are deliberately strings — `"star:10"`, `"grid:4"`,
//! `"crash=0.5,flap=0.3"`, `"storm"` — so the grid stays a flat product
//! of scalars that can be logged, diffed, and embedded in capsule tags
//! without nested tables.

use crate::json::{parse_json, Json};
use lrs_netsim::attack::{AttackConfig, AttackVector};
use lrs_netsim::fault::FaultConfig;
use lrs_netsim::medium::MediumConfig;
use lrs_netsim::sim::SimConfig;
use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;

/// Schemes the campaign engine can run.
pub const SCHEMES: [&str; 2] = ["lr-seluge", "seluge"];

/// A validated campaign grid specification.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name; also the default output directory stem.
    pub name: String,
    /// Schemes under test (`lr-seluge`, `seluge`).
    pub schemes: Vec<String>,
    /// Topology tokens: `star:N` (one-hop cluster of N) or `grid:S`
    /// (S×S multihop grid, tight 8 m spacing, per-job sampled links).
    pub topologies: Vec<String>,
    /// Application-layer loss rates in parts per million.
    pub loss_ppm: Vec<u32>,
    /// Fault-plan tokens: `none`, or comma-joined knobs covering the
    /// full §7 fault vocabulary — `crash=R` (optionally with
    /// `reboot=lo-hi` seconds), `flap=R`, `degrade=R`, `drift=ppm` —
    /// e.g. `crash=0.5,reboot=10-60,flap=0.3`. See [`fault_config`].
    pub faults: Vec<String>,
    /// Attacker tokens: `none`, `storm` (the chaos sweep's legacy
    /// bursty bogus-data packet storm from the highest-id node), or a
    /// comma-joined [`attack_config`] token naming one of the five §7
    /// vectors with a packets-per-second rate — `bogus=R`, `forgesig=R`,
    /// `forgeadv=R`, `dor=R`, `spoofdor=R` — composable with
    /// `burst=on-off` duty cycles and `n=K` attacker counts.
    pub attackers: Vec<String>,
    /// Monte-Carlo repetitions per grid cell.
    pub seeds: u64,
    /// First simulator seed; job `s` of a cell runs seed
    /// `seed_base + cell_index * seeds + s`.
    pub seed_base: u64,
    /// Image size in bytes (the `campaign` parameter profile).
    pub image_bytes: usize,
    /// Per-job wall deadline in virtual seconds.
    pub deadline_s: u64,
    /// Stall-watchdog window in virtual seconds.
    pub stall_s: u64,
    /// Hard virtual-time ceiling in seconds.
    pub max_sim_s: u64,
    /// Engine selection: `sequential`, `sharded`, or `auto` (sharded
    /// at/above [`sharded_threshold`](Self::sharded_threshold) nodes).
    pub engine: String,
    /// Shard count when the sharded engine runs a job.
    pub shards: usize,
    /// Node count at which `auto` hands a job to the sharded engine.
    pub sharded_threshold: usize,
}

impl CampaignSpec {
    /// Parses and validates a spec from TOML or JSON text
    /// (auto-detected: a document starting with `{` is JSON).
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = if text.trim_start().starts_with('{') {
            parse_json(text)?
        } else {
            parse_toml_subset(text)?
        };
        Self::from_json(&doc)
    }

    /// Builds and validates a spec from a parsed document (spec file or
    /// manifest-embedded copy).
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let name = req_str(doc, "name")?;
        let spec = CampaignSpec {
            name,
            schemes: str_list(doc, "schemes", &["lr-seluge", "seluge"])?,
            topologies: str_list(doc, "topologies", &["star:6"])?,
            loss_ppm: num_list(doc, "loss_ppm", &[50_000.0])?
                .into_iter()
                .map(|v| v as u32)
                .collect(),
            faults: str_list(doc, "faults", &["none"])?,
            attackers: str_list(doc, "attackers", &["none"])?,
            seeds: opt_num(doc, "seeds", 8.0)? as u64,
            seed_base: opt_num(doc, "seed_base", 1_000.0)? as u64,
            image_bytes: opt_num(doc, "image_bytes", 1_024.0)? as usize,
            deadline_s: opt_num(doc, "deadline_s", 3_600.0)? as u64,
            stall_s: opt_num(doc, "stall_s", 400.0)? as u64,
            max_sim_s: opt_num(doc, "max_sim_s", 3_000.0)? as u64,
            engine: opt_str(doc, "engine", "auto")?,
            shards: opt_num(doc, "shards", 4.0)? as usize,
            sharded_threshold: opt_num(doc, "sharded_threshold", 64.0)? as usize,
        };
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("name must be non-empty".into());
        }
        for s in &self.schemes {
            if !SCHEMES.contains(&s.as_str()) {
                return Err(format!("unknown scheme {s:?}; known: {SCHEMES:?}"));
            }
        }
        for t in &self.topologies {
            let nodes = topology_nodes(t)?;
            if nodes < 2 {
                return Err(format!("topology {t:?} has {nodes} nodes; need at least 2"));
            }
        }
        for &ppm in &self.loss_ppm {
            if ppm >= 1_000_000 {
                return Err(format!("loss_ppm {ppm} must be below 1000000 (100%)"));
            }
        }
        for f in &self.faults {
            fault_config(f, Duration::from_secs(self.max_sim_s))?;
        }
        for a in &self.attackers {
            attack_config(a)?;
        }
        if self.seeds == 0 {
            return Err("seeds must be at least 1".into());
        }
        if !["sequential", "sharded", "auto"].contains(&self.engine.as_str()) {
            return Err(format!(
                "unknown engine {:?}; use \"sequential\", \"sharded\", or \"auto\"",
                self.engine
            ));
        }
        if !(1..=64).contains(&self.shards) {
            return Err(format!("shards must be in 1..=64, got {}", self.shards));
        }
        Ok(())
    }

    /// The canonical document embedded in the campaign manifest.
    /// `from_json(to_json(spec)) == spec`, so resume re-validates the
    /// exact grid the campaign started with.
    pub fn to_json(&self) -> Json {
        let strs = |xs: &[String]| Json::Arr(xs.iter().map(Json::str).collect());
        Json::Obj(vec![
            ("name".into(), Json::str(&self.name)),
            ("schemes".into(), strs(&self.schemes)),
            ("topologies".into(), strs(&self.topologies)),
            (
                "loss_ppm".into(),
                Json::Arr(self.loss_ppm.iter().map(|&v| Json::num(v)).collect()),
            ),
            ("faults".into(), strs(&self.faults)),
            ("attackers".into(), strs(&self.attackers)),
            ("seeds".into(), Json::num(self.seeds as u32)),
            ("seed_base".into(), Json::Num(self.seed_base as f64)),
            ("image_bytes".into(), Json::Num(self.image_bytes as f64)),
            ("deadline_s".into(), Json::Num(self.deadline_s as f64)),
            ("stall_s".into(), Json::Num(self.stall_s as f64)),
            ("max_sim_s".into(), Json::Num(self.max_sim_s as f64)),
            ("engine".into(), Json::str(&self.engine)),
            ("shards".into(), Json::num(self.shards as u32)),
            (
                "sharded_threshold".into(),
                Json::Num(self.sharded_threshold as f64),
            ),
        ])
    }

    /// Enumerates the grid cells in canonical order: scheme (outermost)
    /// → topology → loss → fault → attacker (innermost). This order is
    /// load-bearing: cell indices, job ids, and seeds all derive from
    /// it, and resume depends on it being stable.
    pub fn cells(&self) -> Vec<CellParams> {
        let mut cells = Vec::new();
        for scheme in &self.schemes {
            for topology in &self.topologies {
                for &loss_ppm in &self.loss_ppm {
                    for fault in &self.faults {
                        for attacker in &self.attackers {
                            cells.push(CellParams {
                                index: cells.len(),
                                scheme: scheme.clone(),
                                topology: topology.clone(),
                                loss_ppm,
                                fault: fault.clone(),
                                attacker: attacker.clone(),
                            });
                        }
                    }
                }
            }
        }
        cells
    }

    /// Total job count: cells × seeds.
    pub fn job_count(&self) -> usize {
        self.cells().len() * self.seeds as usize
    }

    /// The simulator configuration for a cell at `loss_ppm`.
    pub fn sim_config(&self, loss_ppm: u32) -> SimConfig {
        SimConfig {
            medium: MediumConfig {
                app_loss: loss_ppm as f64 / 1e6,
                ..MediumConfig::default()
            },
            max_sim_time: Some(Duration::from_secs(self.max_sim_s)),
            stall_window: Some(Duration::from_secs(self.stall_s)),
            ..SimConfig::default()
        }
    }
}

/// One grid cell: every parameter except the seed.
#[derive(Clone, Debug, PartialEq)]
pub struct CellParams {
    /// Position in the canonical [`CampaignSpec::cells`] order.
    pub index: usize,
    /// Scheme under test.
    pub scheme: String,
    /// Topology token.
    pub topology: String,
    /// Application-layer loss in ppm.
    pub loss_ppm: u32,
    /// Fault-plan token.
    pub fault: String,
    /// Attacker token.
    pub attacker: String,
}

/// Node count of a topology token (`star:N` → N, `grid:S` → S²).
pub fn topology_nodes(token: &str) -> Result<usize, String> {
    let (kind, arg) = token.split_once(':').ok_or_else(|| {
        format!("bad topology token {token:?}; expected \"star:N\" or \"grid:S\"")
    })?;
    let n: usize = arg
        .parse()
        .map_err(|e| format!("bad topology size in {token:?}: {e}"))?;
    match kind {
        "star" => Ok(n),
        "grid" => Ok(n * n),
        other => Err(format!(
            "unknown topology kind {other:?}; known: \"star\", \"grid\""
        )),
    }
}

/// Materializes a topology token. Grid links are sampled from `seed`,
/// so each job sees its own link-quality draw (star links are perfect
/// and seed-independent).
pub fn build_topology(token: &str, seed: u64) -> Result<Topology, String> {
    let (kind, arg) = token.split_once(':').ok_or("unreachable: validated")?;
    let n: usize = arg.parse().map_err(|e| format!("{e}"))?;
    match kind {
        "star" => Ok(Topology::star(n)),
        "grid" => Ok(Topology::grid(n, 8.0, seed)),
        other => Err(format!("unknown topology kind {other:?}")),
    }
}

/// Parses a probability knob value, shared by the fault rates.
fn parse_rate(part: &str, value: &str) -> Result<f64, String> {
    let rate: f64 = value
        .parse()
        .map_err(|e| format!("bad rate in fault token {part:?}: {e}"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("fault rate {rate} in {part:?} outside [0, 1]"));
    }
    Ok(rate)
}

/// Parses a `lo-hi` seconds range (both sides positive f64).
fn parse_secs_range(part: &str, value: &str) -> Result<(Duration, Duration), String> {
    let (lo, hi) = value
        .split_once('-')
        .ok_or_else(|| format!("bad range in {part:?}; expected lo-hi seconds"))?;
    let lo: f64 = lo
        .parse()
        .map_err(|e| format!("bad range in {part:?}: {e}"))?;
    let hi: f64 = hi
        .parse()
        .map_err(|e| format!("bad range in {part:?}: {e}"))?;
    if !(lo.is_finite() && hi.is_finite()) || lo <= 0.0 || hi < lo {
        return Err(format!(
            "bad range in {part:?}; need 0 < lo <= hi, got {lo}-{hi}"
        ));
    }
    Ok((secs_to_duration(lo), secs_to_duration(hi)))
}

fn secs_to_duration(s: f64) -> Duration {
    Duration::from_micros((s * 1e6).round() as u64)
}

fn duration_to_secs(d: Duration) -> f64 {
    d.as_micros() as f64 / 1e6
}

/// Builds the [`FaultConfig`] a fault token describes, with `horizon`
/// as the scheduling window. `none` yields the quiet default config;
/// comma-joined knobs cover the full fault vocabulary:
///
/// * `crash=R` — per-node crash probability. Reboot window defaults to
///   30–120 s; override with `reboot=lo-hi` (seconds). A `crash=0`
///   schedules no reboots at all.
/// * `flap=R` — per-link flap probability.
/// * `degrade=R` — per-link asymmetric degradation probability.
/// * `drift=ppm` — per-node clock-drift amplitude in ppm (0..=500000).
pub fn fault_config(token: &str, horizon: Duration) -> Result<FaultConfig, String> {
    let mut config = FaultConfig {
        horizon,
        ..FaultConfig::default()
    };
    if token == "none" {
        return Ok(config);
    }
    let mut reboot: Option<(Duration, Duration)> = None;
    for part in token.split(',') {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("bad fault token part {part:?}; expected key=value"))?;
        match key {
            "crash" => config.crash_rate = parse_rate(part, value)?,
            "reboot" => reboot = Some(parse_secs_range(part, value)?),
            "flap" => config.link_flap_rate = parse_rate(part, value)?,
            "degrade" => config.degrade_rate = parse_rate(part, value)?,
            "drift" => {
                let ppm: u32 = value
                    .parse()
                    .map_err(|e| format!("bad drift ppm in {part:?}: {e}"))?;
                if ppm > 500_000 {
                    return Err(format!("drift ppm {ppm} in {part:?} above 500000"));
                }
                config.drift_ppm = ppm;
            }
            other => {
                return Err(format!(
                    "unknown fault knob {other:?}; known: \"crash\", \"reboot\", \
                     \"flap\", \"degrade\", \"drift\""
                ))
            }
        }
    }
    if reboot.is_some() && config.crash_rate == 0.0 {
        return Err(format!(
            "fault token {token:?} sets a reboot window without crash > 0"
        ));
    }
    // Crashed nodes reboot (default window 30–120 s); with no crashes
    // there is nothing to reboot, so the window stays unset.
    config.reboot_after = if config.crash_rate > 0.0 {
        Some(reboot.unwrap_or((Duration::from_secs(30), Duration::from_secs(120))))
    } else {
        None
    };
    Ok(config)
}

/// Renders a [`FaultConfig`] back into the canonical token
/// [`fault_config`] parses. `fault_config(canonical_fault_token(c), h)`
/// reproduces `c` exactly (for configs expressible in the grammar —
/// i.e. those `fault_config` itself produces), and the canonical token
/// is a fixed point of the round trip.
pub fn canonical_fault_token(config: &FaultConfig) -> String {
    let mut parts = Vec::new();
    if config.crash_rate > 0.0 {
        parts.push(format!("crash={}", config.crash_rate));
        if let Some((lo, hi)) = config.reboot_after {
            parts.push(format!(
                "reboot={}-{}",
                duration_to_secs(lo),
                duration_to_secs(hi)
            ));
        }
    }
    if config.link_flap_rate > 0.0 {
        parts.push(format!("flap={}", config.link_flap_rate));
    }
    if config.degrade_rate > 0.0 {
        parts.push(format!("degrade={}", config.degrade_rate));
    }
    if config.drift_ppm > 0 {
        parts.push(format!("drift={}", config.drift_ppm));
    }
    if parts.is_empty() {
        "none".into()
    } else {
        parts.join(",")
    }
}

/// Maximum injection rate an attacker token may ask for (packets/s).
pub const MAX_ATTACK_RATE: f64 = 100.0;

/// Maximum attacker count per cell (`n=K`).
pub const MAX_ATTACKERS: u32 = 16;

fn unknown_attacker(token: &str) -> String {
    let labels: Vec<&str> = AttackVector::ALL.iter().map(|v| v.label()).collect();
    format!(
        "unknown attacker {token:?}; known: \"none\", \"storm\", or comma-joined \
         knobs {labels:?} (=rate pkts/s), \"burst=on-off\" (seconds), \"n=K\""
    )
}

/// Builds the [`AttackConfig`] an attacker token describes, or `None`
/// for the tokens that do not drive the plan-based adversary engine:
/// `none` (no attacker) and `storm` (the legacy hard-coded bursty
/// storm, handled by the scenario registry directly).
///
/// Plan tokens are comma-joined knobs. Exactly one must name a vector
/// (`bogus=R`, `forgesig=R`, `forgeadv=R`, `dor=R`, `spoofdor=R`, with
/// `R` an injection rate in packets per second, `0 < R <=`
/// [`MAX_ATTACK_RATE`]); `burst=on-off` (seconds) adds a packet-storm
/// duty cycle and `n=K` places `K` attackers (1..=[`MAX_ATTACKERS`]).
pub fn attack_config(token: &str) -> Result<Option<AttackConfig>, String> {
    if token == "none" || token == "storm" {
        return Ok(None);
    }
    let mut config = AttackConfig::default();
    let mut vector: Option<AttackVector> = None;
    for part in token.split(',') {
        let Some((key, value)) = part.split_once('=') else {
            return Err(unknown_attacker(part));
        };
        if let Some(v) = AttackVector::from_label(key) {
            if vector.replace(v).is_some() {
                return Err(format!(
                    "attacker token {token:?} names more than one vector"
                ));
            }
            let rate: f64 = value
                .parse()
                .map_err(|e| format!("bad rate in attacker token {part:?}: {e}"))?;
            if !rate.is_finite() || rate <= 0.0 || rate > MAX_ATTACK_RATE {
                return Err(format!(
                    "attack rate {rate} in {part:?} outside (0, {MAX_ATTACK_RATE}]"
                ));
            }
            config.interval = Duration::from_micros((1e6 / rate).round() as u64);
            continue;
        }
        match key {
            "burst" => {
                let (on, off) = value
                    .split_once('-')
                    .ok_or_else(|| format!("bad burst in {part:?}; expected on-off seconds"))?;
                let on: f64 = on
                    .parse()
                    .map_err(|e| format!("bad burst in {part:?}: {e}"))?;
                let off: f64 = off
                    .parse()
                    .map_err(|e| format!("bad burst in {part:?}: {e}"))?;
                if !(on.is_finite() && off.is_finite()) || on <= 0.0 || off <= 0.0 {
                    return Err(format!(
                        "bad burst in {part:?}; need on > 0 and off > 0, got {on}-{off}"
                    ));
                }
                config.burst = Some((secs_to_duration(on), secs_to_duration(off)));
            }
            "n" => {
                let n: u32 = value
                    .parse()
                    .map_err(|e| format!("bad attacker count in {part:?}: {e}"))?;
                if !(1..=MAX_ATTACKERS).contains(&n) {
                    return Err(format!(
                        "attacker count {n} in {part:?} outside 1..={MAX_ATTACKERS}"
                    ));
                }
                config.attackers = n;
            }
            _ => return Err(unknown_attacker(part)),
        }
    }
    let Some(vector) = vector else {
        return Err(format!("attacker token {token:?} names no vector knob"));
    };
    config.vector = vector;
    Ok(Some(config))
}

/// Renders an [`AttackConfig`] back into the canonical token
/// [`attack_config`] parses: `attack_config(canonical_attack_token(c))`
/// reproduces `c` exactly for configs the grammar can express.
pub fn canonical_attack_token(config: &AttackConfig) -> String {
    let rate = 1e6 / config.interval.as_micros() as f64;
    let mut token = format!("{}={}", config.vector.label(), rate);
    if let Some((on, off)) = config.burst {
        token.push_str(&format!(
            ",burst={}-{}",
            duration_to_secs(on),
            duration_to_secs(off)
        ));
    }
    if config.attackers != 1 {
        token.push_str(&format!(",n={}", config.attackers));
    }
    token
}

/// Parses the flat TOML subset campaign specs use: `key = value` lines
/// where a value is a `"string"`, a number, a boolean, or a (possibly
/// multi-line) array of those; `#` starts a comment. Tables and nested
/// arrays are rejected — the grid is deliberately flat.
pub fn parse_toml_subset(text: &str) -> Result<Json, String> {
    let mut fields: Vec<(String, Json)> = Vec::new();
    let mut lines = text.lines().enumerate();
    while let Some((lineno, raw)) = lines.next() {
        let line = strip_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "line {}: tables are not supported; campaign specs are flat key = value",
                lineno + 1
            ));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected key = value", lineno + 1))?;
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("line {}: bad key {key:?}", lineno + 1));
        }
        // Accumulate continuation lines until brackets balance, so
        // arrays can span lines like real TOML.
        let mut value = value.trim().to_string();
        while open_brackets(&value) > 0 {
            let Some((_, next)) = lines.next() else {
                return Err(format!("line {}: unterminated array", lineno + 1));
            };
            value.push(' ');
            value.push_str(strip_comment(next).trim());
        }
        fields.push((key.to_string(), parse_toml_value(&value, lineno + 1)?));
    }
    Ok(Json::Obj(fields))
}

/// Yields `(byte_index, char, inside_string)` over `s`, tracking `"…"`
/// string state with backslash escapes — the same string grammar
/// [`parse_json`] accepts, so the structural scanners below never
/// mistake an escaped `\"` for a string boundary (and thus a `#`, `,`,
/// or bracket inside a string for structure). Quote characters
/// themselves report as in-string.
fn scan_strings(s: &str) -> impl Iterator<Item = (usize, char, bool)> + '_ {
    let mut in_str = false;
    let mut escaped = false;
    s.char_indices().map(move |(i, c)| {
        let was_in = in_str;
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
        }
        (i, c, was_in || in_str)
    })
}

/// Strips a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    for (i, c, in_str) in scan_strings(line) {
        if c == '#' && !in_str {
            return &line[..i];
        }
    }
    line
}

/// Net count of unclosed `[` outside strings.
fn open_brackets(s: &str) -> i32 {
    let mut depth = 0;
    for (_, c, in_str) in scan_strings(s) {
        match c {
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth
}

fn parse_toml_value(s: &str, lineno: usize) -> Result<Json, String> {
    let s = s.trim();
    if s.starts_with('[') {
        if !s.ends_with(']') {
            return Err(format!("line {lineno}: unterminated array"));
        }
        let inner = &s[1..s.len() - 1];
        let mut items = Vec::new();
        for part in split_toml_items(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if part.starts_with('[') {
                return Err(format!("line {lineno}: nested arrays are not supported"));
            }
            items.push(parse_toml_value(part, lineno)?);
        }
        return Ok(Json::Arr(items));
    }
    if s.starts_with('"') {
        // A scalar string is a one-item JSON document.
        return parse_json(s).map_err(|e| format!("line {lineno}: bad string: {e}"));
    }
    match s {
        "true" => return Ok(Json::Bool(true)),
        "false" => return Ok(Json::Bool(false)),
        _ => {}
    }
    // TOML allows 1_000_000 digit separators.
    let cleaned: String = s.chars().filter(|&c| c != '_').collect();
    cleaned
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("line {lineno}: bad value {s:?}"))
}

/// Splits array items on commas outside strings.
fn split_toml_items(s: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0;
    for (i, c, in_str) in scan_strings(s) {
        if c == ',' && !in_str {
            items.push(&s[start..i]);
            start = i + 1;
        }
    }
    items.push(&s[start..]);
    items
}

fn req_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("spec is missing required string field {key:?}"))
}

fn opt_str(doc: &Json, key: &str, default: &str) -> Result<String, String> {
    match doc.get(key) {
        None => Ok(default.to_string()),
        Some(v) => v
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("spec field {key:?} must be a string")),
    }
}

fn opt_num(doc: &Json, key: &str, default: f64) -> Result<f64, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => match v.as_num() {
            Some(n) if n.is_finite() && n >= 0.0 => Ok(n),
            _ => Err(format!("spec field {key:?} must be a non-negative number")),
        },
    }
}

fn str_list(doc: &Json, key: &str, default: &[&str]) -> Result<Vec<String>, String> {
    let Some(v) = doc.get(key) else {
        return Ok(default.iter().map(|s| s.to_string()).collect());
    };
    let arr = v
        .as_arr()
        .ok_or_else(|| format!("spec field {key:?} must be an array of strings"))?;
    if arr.is_empty() {
        return Err(format!("spec field {key:?} must be non-empty"));
    }
    arr.iter()
        .map(|item| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("spec field {key:?} must contain only strings"))
        })
        .collect()
}

fn num_list(doc: &Json, key: &str, default: &[f64]) -> Result<Vec<f64>, String> {
    let Some(v) = doc.get(key) else {
        return Ok(default.to_vec());
    };
    let arr = v
        .as_arr()
        .ok_or_else(|| format!("spec field {key:?} must be an array of numbers"))?;
    if arr.is_empty() {
        return Err(format!("spec field {key:?} must be non-empty"));
    }
    arr.iter()
        .map(|item| match item.as_num() {
            Some(n) if n.is_finite() && n >= 0.0 => Ok(n),
            _ => Err(format!(
                "spec field {key:?} must contain only non-negative numbers"
            )),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"
        # mini grid
        name = "mini"
        schemes = ["lr-seluge", "seluge"]
        topologies = ["star:6"]   # one-hop
        loss_ppm = [
            50_000,  # 5%
            200_000,
        ]
        seeds = 3
    "#;

    #[test]
    fn toml_subset_parses_the_mini_grid() {
        let spec = CampaignSpec::parse(MINI).unwrap();
        assert_eq!(spec.name, "mini");
        assert_eq!(spec.schemes, ["lr-seluge", "seluge"]);
        assert_eq!(spec.loss_ppm, [50_000, 200_000]);
        assert_eq!(spec.seeds, 3);
        // Defaults fill the rest.
        assert_eq!(spec.faults, ["none"]);
        assert_eq!(spec.engine, "auto");
        assert_eq!(spec.job_count(), 2 * 2 * 3);
    }

    #[test]
    fn json_spec_and_manifest_round_trip() {
        let spec = CampaignSpec::parse(MINI).unwrap();
        let text = spec.to_json().render();
        // A JSON spec document parses identically...
        assert_eq!(CampaignSpec::parse(&text).unwrap(), spec);
        // ...as does the manifest-embedded copy.
        assert_eq!(
            CampaignSpec::from_json(&parse_json(&text).unwrap()).unwrap(),
            spec
        );
    }

    #[test]
    fn cell_order_is_canonical_and_indexed() {
        let spec = CampaignSpec::parse(MINI).unwrap();
        let cells = spec.cells();
        assert_eq!(cells.len(), 4);
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
        }
        // Scheme is the outermost axis, loss the innermost varying one.
        assert_eq!(cells[0].scheme, "lr-seluge");
        assert_eq!(cells[0].loss_ppm, 50_000);
        assert_eq!(cells[1].loss_ppm, 200_000);
        assert_eq!(cells[2].scheme, "seluge");
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for (text, needle) in [
            ("schemes = [\"lr-seluge\"]", "missing required"),
            ("name = \"x\"\nschemes = [\"bogus\"]", "unknown scheme"),
            (
                "name = \"x\"\ntopologies = [\"ring:5\"]",
                "unknown topology",
            ),
            ("name = \"x\"\ntopologies = [\"star:1\"]", "at least 2"),
            ("name = \"x\"\nloss_ppm = [1000000]", "below 1000000"),
            ("name = \"x\"\nfaults = [\"crash=2.0\"]", "outside [0, 1]"),
            (
                "name = \"x\"\nfaults = [\"melt=0.5\"]",
                "unknown fault knob",
            ),
            ("name = \"x\"\nattackers = [\"ddos\"]", "unknown attacker"),
            ("name = \"x\"\nseeds = 0", "at least 1"),
            ("name = \"x\"\nengine = \"quantum\"", "unknown engine"),
            ("name = \"x\"\nshards = 65", "1..=64"),
            ("[table]\nname = \"x\"", "tables are not supported"),
            ("name = \"x\"\nloss_ppm = [[1]]", "nested arrays"),
        ] {
            let err = CampaignSpec::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text:?} gave {err:?}");
        }
    }

    #[test]
    fn escaped_quotes_do_not_confuse_the_scanners() {
        // `\"` inside a string must not toggle string state, so the
        // `#`, `,`, and `]` that follow stay part of the value instead
        // of being read as comment/separator/close-bracket.
        let doc = parse_toml_subset(
            "name = \"a\\\"b # not a comment\"\nxs = [\"c,\\\"d\", \"e]f\"]  # real comment",
        )
        .unwrap();
        assert_eq!(
            doc.get("name").and_then(Json::as_str),
            Some("a\"b # not a comment")
        );
        let xs: Vec<&str> = doc
            .get("xs")
            .and_then(Json::as_arr)
            .expect("xs is an array")
            .iter()
            .filter_map(Json::as_str)
            .collect();
        assert_eq!(xs, ["c,\"d", "e]f"]);
    }

    #[test]
    fn fault_tokens_build_configs() {
        let horizon = Duration::from_secs(3_000);
        let quiet = fault_config("none", horizon).unwrap();
        assert_eq!(quiet.crash_rate, 0.0);
        assert_eq!(quiet.horizon, horizon);
        let both = fault_config("crash=0.5,flap=0.3", horizon).unwrap();
        assert_eq!(both.crash_rate, 0.5);
        assert_eq!(both.link_flap_rate, 0.3);
        assert_eq!(
            both.reboot_after,
            Some((Duration::from_secs(30), Duration::from_secs(120)))
        );
        // The full vocabulary, with an explicit reboot window.
        let all = fault_config(
            "crash=0.25,reboot=5-20.5,flap=0.1,degrade=0.75,drift=150000",
            horizon,
        )
        .unwrap();
        assert_eq!(all.crash_rate, 0.25);
        assert_eq!(
            all.reboot_after,
            Some((Duration::from_secs(5), Duration::from_micros(20_500_000)))
        );
        assert_eq!(all.degrade_rate, 0.75);
        assert_eq!(all.drift_ppm, 150_000);
        // crash=0 means nobody crashes, so nobody reboots either.
        let no_crash = fault_config("crash=0,flap=0.2", horizon).unwrap();
        assert_eq!(no_crash.reboot_after, None);
    }

    #[test]
    fn bad_fault_tokens_are_rejected() {
        let horizon = Duration::from_secs(100);
        for (token, needle) in [
            ("crash", "expected key=value"),
            ("reboot=10-60", "without crash"),
            ("crash=0,reboot=10-60", "without crash"),
            ("crash=0.5,reboot=60", "expected lo-hi"),
            ("crash=0.5,reboot=60-10", "0 < lo <= hi"),
            ("crash=0.5,reboot=0-10", "0 < lo <= hi"),
            ("drift=abc", "bad drift ppm"),
            ("drift=900000", "above 500000"),
            ("degrade=1.5", "outside [0, 1]"),
        ] {
            let err = fault_config(token, horizon).unwrap_err();
            assert!(err.contains(needle), "{token:?} gave {err:?}");
        }
    }

    #[test]
    fn fault_tokens_round_trip_through_canonical_form() {
        let horizon = Duration::from_secs(3_000);
        for token in [
            "none",
            "crash=0.5",
            "crash=0.5,reboot=10-60",
            "crash=0.125,reboot=2.5-7.25,flap=0.3,degrade=0.99,drift=200000",
            "flap=1",
            "degrade=0.001",
            "drift=42",
        ] {
            let config = fault_config(token, horizon).unwrap();
            let canonical = canonical_fault_token(&config);
            let reparsed = fault_config(&canonical, horizon).unwrap();
            assert_eq!(reparsed, config, "{token:?} → {canonical:?}");
            // The canonical form is a fixed point.
            assert_eq!(canonical_fault_token(&reparsed), canonical);
        }
    }

    #[test]
    fn attack_tokens_build_configs() {
        // Legacy tokens bypass the plan engine.
        assert_eq!(attack_config("none").unwrap(), None);
        assert_eq!(attack_config("storm").unwrap(), None);
        let c = attack_config("bogus=4").unwrap().unwrap();
        assert_eq!(c.vector, AttackVector::BogusData);
        assert_eq!(c.interval, Duration::from_millis(250));
        assert_eq!(c.attackers, 1);
        assert_eq!(c.burst, None);
        let c = attack_config("spoofdor=0.5,burst=2-8,n=3")
            .unwrap()
            .unwrap();
        assert_eq!(c.vector, AttackVector::SpoofedDenialOfReceipt);
        assert_eq!(c.interval, Duration::from_secs(2));
        assert_eq!(
            c.burst,
            Some((Duration::from_secs(2), Duration::from_secs(8)))
        );
        assert_eq!(c.attackers, 3);
    }

    #[test]
    fn bad_attack_tokens_are_rejected() {
        for (token, needle) in [
            ("ddos", "unknown attacker"),
            ("blizzard=4", "unknown attacker"),
            ("burst=2-8", "names no vector knob"),
            ("bogus=4,dor=2", "more than one vector"),
            ("bogus=0", "outside (0, 100]"),
            ("bogus=200", "outside (0, 100]"),
            ("bogus=nope", "bad rate"),
            ("dor=2,burst=5", "expected on-off"),
            ("dor=2,burst=0-5", "on > 0"),
            ("dor=2,n=0", "outside 1..=16"),
            ("dor=2,n=99", "outside 1..=16"),
        ] {
            let err = attack_config(token).unwrap_err();
            assert!(err.contains(needle), "{token:?} gave {err:?}");
        }
    }

    #[test]
    fn attack_tokens_round_trip_through_canonical_form() {
        for token in [
            "bogus=4",
            "forgesig=10",
            "forgeadv=0.25",
            "dor=2,burst=1.5-3",
            "spoofdor=100,burst=2-0.5,n=16",
            "bogus=0.001,n=2",
        ] {
            let config = attack_config(token).unwrap().unwrap();
            let canonical = canonical_attack_token(&config);
            let reparsed = attack_config(&canonical).unwrap().unwrap();
            assert_eq!(reparsed, config, "{token:?} → {canonical:?}");
            assert_eq!(canonical_attack_token(&reparsed), canonical);
        }
    }

    #[test]
    fn topology_tokens_size_and_build() {
        assert_eq!(topology_nodes("star:10").unwrap(), 10);
        assert_eq!(topology_nodes("grid:4").unwrap(), 16);
        assert_eq!(build_topology("star:10", 7).unwrap().len(), 10);
        assert_eq!(build_topology("grid:3", 7).unwrap().len(), 9);
        // Grid links are a per-seed draw; star links are not.
        let a = build_topology("grid:3", 1).unwrap();
        let b = build_topology("grid:3", 2).unwrap();
        assert_ne!(a, b);
    }
}

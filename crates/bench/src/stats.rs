//! Sample statistics for statistically honest experiment outputs.
//!
//! The paper's figures are Monte-Carlo means; reporting a mean without
//! its uncertainty hides whether two curves actually differ. Every
//! result file therefore carries, per metric, the raw per-seed samples,
//! the sample mean, and a 95 % confidence interval computed from the
//! Student t distribution (the seed counts are small, so the normal
//! approximation would understate the interval).

/// Mean, spread, and a 95 % confidence half-width for one metric.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Number of finite samples the statistics are computed over.
    pub n: usize,
    /// Sample mean (NaN when no finite samples exist).
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n < 2).
    pub sd: f64,
    /// Half-width of the 95 % confidence interval for the mean
    /// (`t · sd / √n`; 0 for n < 2).
    pub ci95: f64,
}

/// Two-sided 95 % Student t critical values by degrees of freedom
/// (1..=30); beyond 30 the normal value 1.96 is close enough.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// t critical value for `df` degrees of freedom at 95 % confidence.
fn t95(df: usize) -> f64 {
    if df == 0 {
        f64::NAN
    } else if df <= T95.len() {
        T95[df - 1]
    } else {
        1.96
    }
}

/// Summarizes `samples`, ignoring non-finite entries (a stalled run
/// reports `NaN` latency; it must not poison the mean of the runs that
/// did complete — completion rate is tracked as its own metric).
pub fn summarize(samples: &[f64]) -> Summary {
    let finite: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
    let n = finite.len();
    if n == 0 {
        return Summary {
            n: 0,
            mean: f64::NAN,
            sd: 0.0,
            ci95: 0.0,
        };
    }
    let mean = finite.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return Summary {
            n,
            mean,
            sd: 0.0,
            ci95: 0.0,
        };
    }
    let var = finite.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
    let sd = var.sqrt();
    let ci95 = t95(n - 1) * sd / (n as f64).sqrt();
    Summary { n, mean, sd, ci95 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_samples_have_zero_spread() {
        let s = summarize(&[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn known_example() {
        // Samples 1..=5: mean 3, sd sqrt(2.5), t(4) = 2.776.
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.mean, 3.0);
        assert!((s.sd - 2.5f64.sqrt()).abs() < 1e-12);
        let want = 2.776 * 2.5f64.sqrt() / 5f64.sqrt();
        assert!((s.ci95 - want).abs() < 1e-9, "{} vs {want}", s.ci95);
    }

    #[test]
    fn nan_samples_are_ignored() {
        let s = summarize(&[2.0, f64::NAN, 4.0, f64::INFINITY]);
        assert_eq!(s.n, 2);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(summarize(&[]).mean.is_nan());
        let s = summarize(&[7.5]);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn wider_df_narrows_interval() {
        // Same spread, more samples → smaller CI.
        let few: Vec<f64> = (0..4).map(|i| (i % 2) as f64).collect();
        let many: Vec<f64> = (0..30).map(|i| (i % 2) as f64).collect();
        assert!(summarize(&many).ci95 < summarize(&few).ci95);
    }

    #[test]
    fn t_table_monotone_toward_normal() {
        for df in 1..T95.len() {
            assert!(t95(df) > t95(df + 1));
        }
        assert_eq!(t95(1000), 1.96);
    }
}

//! Shared command-line parsing for the workspace binaries.
//!
//! Every bench bin used to hand-roll `std::env::args()` scans; this
//! module replaces them with one declarative parser: a bin declares its
//! flag set, parsing rejects anything undeclared, and errors are typed
//! ([`CliError`]) so `main` can render them once instead of sprinkling
//! `eprintln!` + `exit` at each parse site. Common conveniences
//! (`--smoke`/`--quick`/`--json` flags, `--threads` with the
//! `LRS_THREADS` fallback, the `--capsule <dir>` flight-recorder knob)
//! live here so they behave identically across `chaos`, `scale`,
//! `attack`, `campaign`, `replay`, and the swarm binaries.

use crate::harness::configured_threads;
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;

/// One declared flag.
#[derive(Clone, Copy, Debug)]
pub struct Flag {
    /// Full spelling including the leading dashes, e.g. `"--smoke"`.
    pub name: &'static str,
    /// Whether the flag consumes the following argument as its value.
    pub takes_value: bool,
    /// One-line description for the usage listing.
    pub help: &'static str,
}

/// Declares a boolean flag.
pub const fn flag(name: &'static str, help: &'static str) -> Flag {
    Flag {
        name,
        takes_value: false,
        help,
    }
}

/// Declares a flag that takes a value.
pub const fn valued(name: &'static str, help: &'static str) -> Flag {
    Flag {
        name,
        takes_value: true,
        help,
    }
}

/// A parse or validation failure; renders as the message the user sees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// An argument that is not a declared flag (or a stray positional).
    UnknownArg {
        /// The offending token.
        arg: String,
        /// The full usage listing for the bin.
        usage: String,
    },
    /// A valued flag appeared last, with nothing following it.
    MissingValue {
        /// The flag missing its value.
        flag: &'static str,
    },
    /// A value failed validation.
    BadValue {
        /// The flag whose value was rejected.
        flag: String,
        /// The rejected value.
        value: String,
        /// Why it was rejected.
        reason: String,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownArg { arg, usage } => {
                write!(f, "unknown argument {arg:?}\n{usage}")
            }
            CliError::MissingValue { flag } => {
                write!(f, "{flag} requires a value")
            }
            CliError::BadValue {
                flag,
                value,
                reason,
            } => write!(f, "bad {flag} {value:?}: {reason}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parsed arguments for one bin.
#[derive(Debug)]
pub struct Cli {
    bin: &'static str,
    spec: &'static [Flag],
    /// Present flags; valued flags map to `Some(value)`.
    present: HashMap<&'static str, Option<String>>,
}

impl Cli {
    /// Parses the process arguments against `spec`.
    pub fn parse(bin: &'static str, spec: &'static [Flag]) -> Result<Cli, CliError> {
        Cli::parse_from(bin, spec, std::env::args().skip(1))
    }

    /// Parses an explicit argument list (tests, nested invocations).
    pub fn parse_from(
        bin: &'static str,
        spec: &'static [Flag],
        args: impl IntoIterator<Item = String>,
    ) -> Result<Cli, CliError> {
        let mut cli = Cli {
            bin,
            spec,
            present: HashMap::new(),
        };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let Some(decl) = spec.iter().find(|d| d.name == arg) else {
                return Err(CliError::UnknownArg {
                    arg,
                    usage: cli.usage(),
                });
            };
            let value = if decl.takes_value {
                Some(
                    args.next()
                        .ok_or(CliError::MissingValue { flag: decl.name })?,
                )
            } else {
                None
            };
            // Last occurrence wins, matching the common CLI convention.
            cli.present.insert(decl.name, value);
        }
        Ok(cli)
    }

    /// The rendered usage listing.
    pub fn usage(&self) -> String {
        let mut out = format!("usage: {} [flags]\n", self.bin);
        for decl in self.spec {
            let name = if decl.takes_value {
                format!("{} <value>", decl.name)
            } else {
                decl.name.to_string()
            };
            out.push_str(&format!("  {name:<24} {}\n", decl.help));
        }
        out.pop();
        out
    }

    /// Whether `name` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.present.contains_key(name)
    }

    /// The raw value of a valued flag, if given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.present.get(name)?.as_deref()
    }

    /// Parses the value of `name`, if given.
    pub fn parsed<T: FromStr>(&self, name: &str) -> Result<Option<T>, CliError>
    where
        T::Err: fmt::Display,
    {
        match self.value(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|e: T::Err| CliError::BadValue {
                    flag: name.to_string(),
                    value: raw.to_string(),
                    reason: e.to_string(),
                }),
        }
    }

    /// Parses the value of `name`, falling back to `default`.
    pub fn parsed_or<T: FromStr>(&self, name: &str, default: T) -> Result<T, CliError>
    where
        T::Err: fmt::Display,
    {
        Ok(self.parsed(name)?.unwrap_or(default))
    }

    /// The common `--smoke` CI-gate flag.
    pub fn smoke(&self) -> bool {
        self.flag("--smoke")
    }

    /// The common `--quick` reduced-sweep flag.
    pub fn quick(&self) -> bool {
        self.flag("--quick")
    }

    /// The common `--json` output-format flag.
    pub fn json(&self) -> bool {
        self.flag("--json")
    }

    /// Worker threads: `--threads N` when given (and declared),
    /// otherwise the `LRS_THREADS`/auto-detection fallback every bin
    /// shares.
    pub fn threads(&self) -> Result<usize, CliError> {
        match self.parsed::<usize>("--threads")? {
            Some(0) => Err(CliError::BadValue {
                flag: "--threads".to_string(),
                value: "0".to_string(),
                reason: "need at least one thread".to_string(),
            }),
            Some(n) => Ok(n),
            None => Ok(configured_threads()),
        }
    }

    /// The common `--capsule <dir>` flight-recorder knob.
    pub fn capsule_dir(&self) -> Option<PathBuf> {
        self.value("--capsule").map(PathBuf::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &[Flag] = &[
        flag("--smoke", "reduced CI grid"),
        flag("--quick", "reduced sweep"),
        valued("--capsule", "arm the flight recorder"),
        valued("--threads", "worker threads"),
        valued("--seed", "base seed"),
    ];

    fn parse(args: &[&str]) -> Result<Cli, CliError> {
        Cli::parse_from("test", SPEC, args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn flags_and_values_parse() {
        let cli = parse(&["--smoke", "--capsule", "results/capsules", "--seed", "9"]).unwrap();
        assert!(cli.smoke());
        assert!(!cli.quick());
        assert_eq!(cli.capsule_dir(), Some(PathBuf::from("results/capsules")));
        assert_eq!(cli.parsed::<u64>("--seed").unwrap(), Some(9));
        assert_eq!(cli.parsed_or::<u64>("--seed", 7).unwrap(), 9);
    }

    #[test]
    fn unknown_arguments_are_typed_errors() {
        let err = parse(&["--smoek"]).unwrap_err();
        match &err {
            CliError::UnknownArg { arg, usage } => {
                assert_eq!(arg, "--smoek");
                assert!(usage.contains("--smoke"));
            }
            other => panic!("expected UnknownArg, got {other:?}"),
        }
        // Stray positionals are rejected the same way.
        assert!(matches!(
            parse(&["results"]),
            Err(CliError::UnknownArg { .. })
        ));
    }

    #[test]
    fn missing_and_bad_values_are_typed_errors() {
        assert_eq!(
            parse(&["--capsule"]).map(|_| ()),
            Err(CliError::MissingValue { flag: "--capsule" })
        );
        let cli = parse(&["--seed", "many"]).unwrap();
        assert!(matches!(
            cli.parsed::<u64>("--seed"),
            Err(CliError::BadValue { .. })
        ));
    }

    #[test]
    fn threads_fall_back_to_harness_default() {
        let cli = parse(&[]).unwrap();
        assert!(cli.threads().unwrap() >= 1);
        let cli = parse(&["--threads", "3"]).unwrap();
        assert_eq!(cli.threads().unwrap(), 3);
        let cli = parse(&["--threads", "0"]).unwrap();
        assert!(cli.threads().is_err());
    }

    #[test]
    fn last_occurrence_wins() {
        let cli = parse(&["--seed", "1", "--seed", "2"]).unwrap();
        assert_eq!(cli.parsed::<u64>("--seed").unwrap(), Some(2));
    }

    #[test]
    fn errors_render_for_humans() {
        let err = parse(&["--capsule"]).unwrap_err();
        assert_eq!(err.to_string(), "--capsule requires a value");
        let err = parse(&["--nope"]).unwrap_err();
        assert!(err.to_string().contains("unknown argument"));
    }
}

//! Cross-campaign statistical diff engine — the referee behind the
//! `campdiff` binary.
//!
//! The paper's entire argument is comparative, and so is every
//! regression question a protocol or performance change raises: given
//! two campaign `report.json` files, did any cell's metrics get
//! significantly better or worse? This module answers it with real
//! statistics instead of eyeballs:
//!
//! 1. **Parse** both reports ([`ReportDoc::parse`]), tolerating both
//!    metric-schema generations (the 9-metric pre-adversary reports
//!    lack `completion_frac`/`verify_inflation`/`energy_j` and the
//!    `min`/`max` extrema fields).
//! 2. **Pair** cells by canonical key — scheme × topology × loss_ppm ×
//!    fault × attacker ([`CellKey`]) — so asymmetric grids diff over
//!    their intersection and report the unpaired remainder instead of
//!    failing. Within a pair, metrics are likewise intersected.
//! 3. **Test** each paired (cell × metric): variances are
//!    reconstructed from the rendered `(n, mean, ci95)` by inverting
//!    the shared t-table ([`SampleStats::from_ci95`]), then compared
//!    with Welch's t-test (mismatched seed counts are the normal
//!    case), Cohen's d, and the CI95-overlap check.
//! 4. **Control** the false-discovery rate across the whole
//!    cells × metrics grid with Benjamini–Hochberg adjusted p-values,
//!    so a 100-comparison diff at α = 0.05 doesn't cry wolf on ~5
//!    cells every run.
//! 5. **Judge** each significant difference against the metric's
//!    polarity ([`higher_is_better`]) to produce regression /
//!    improvement / no-change verdicts, a machine-readable JSON diff
//!    ([`DiffReport::to_json`]), and a human table
//!    ([`DiffReport::render`]).
//!
//! Identical inputs produce zero significant differences by
//! construction (every delta is 0, every p-value 1); CI self-diffs the
//! committed campaign golden to pin that, and injects a synthetic
//! perturbation ([`ReportDoc::inject`]) to prove detection.

use crate::json::{parse_json, Json};
use lrs_analysis::{bh_adjusted_p, ci95_overlap, cohens_d, welch_t, SampleStats};
use std::collections::BTreeMap;
use std::fmt;

/// Default false-discovery rate for significance verdicts.
pub const DEFAULT_ALPHA: f64 = 0.05;

/// The canonical identity of a grid cell: the exact axes
/// `CampaignSpec::cells` expands, in spec order. Two campaigns' cells
/// pair when these five coordinates match, regardless of cell index or
/// grid shape.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CellKey {
    /// Scheme under test (`lr-seluge`, `seluge`).
    pub scheme: String,
    /// Topology token (`star:6`, `grid:15:tight`, …).
    pub topology: String,
    /// Uniform loss rate in ppm.
    pub loss_ppm: u32,
    /// Canonical fault token (`none`, `crash=0.5`, …).
    pub fault: String,
    /// Canonical attacker token (`none`, `bogus=2.0`, …).
    pub attacker: String,
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} loss={} fault={} atk={}",
            self.scheme, self.topology, self.loss_ppm, self.fault, self.attacker
        )
    }
}

impl CellKey {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("scheme".into(), Json::str(&self.scheme)),
            ("topology".into(), Json::str(&self.topology)),
            ("loss_ppm".into(), Json::num(self.loss_ppm)),
            ("fault".into(), Json::str(&self.fault)),
            ("attacker".into(), Json::str(&self.attacker)),
        ])
    }
}

/// One metric's rendered summary as a report carries it. `min`/`max`
/// are absent in pre-extrema (9-metric era) reports.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSummary {
    /// Finite samples behind the summary.
    pub n: u64,
    /// Sample mean (NaN when every sample was non-finite).
    pub mean: f64,
    /// 95 % CI half-width.
    pub ci95: f64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// Exact minimum, when the report's schema carries extrema.
    pub min: Option<f64>,
    /// Exact maximum, when the report's schema carries extrema.
    pub max: Option<f64>,
}

impl MetricSummary {
    /// The (n, mean, var) sufficient statistics, reconstructed by
    /// inverting the CI through the shared t-table.
    pub fn stats(&self) -> SampleStats {
        SampleStats::from_ci95(self.n, self.mean, self.ci95)
    }
}

/// One parsed report cell.
#[derive(Clone, Debug)]
pub struct ReportCell {
    /// Canonical pairing key.
    pub key: CellKey,
    /// Jobs aggregated into the cell.
    pub jobs: u64,
    /// Outcome histogram as rendered (absent outcomes omitted).
    pub outcomes: Vec<(String, u64)>,
    /// Metric summaries in report order.
    pub metrics: Vec<(String, MetricSummary)>,
}

impl ReportCell {
    fn metric(&self, name: &str) -> Option<&MetricSummary> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }
}

/// A parsed campaign `report.json`.
#[derive(Clone, Debug)]
pub struct ReportDoc {
    /// Campaign name from the spec.
    pub name: String,
    /// Total jobs in the grid.
    pub jobs: u64,
    /// Seeds per cell the spec requested.
    pub seeds: u64,
    /// Cells in report order.
    pub cells: Vec<ReportCell>,
}

impl ReportDoc {
    /// Parses a rendered campaign report. Rejects duplicate cell keys —
    /// pairing would be ambiguous — and malformed cells; tolerates both
    /// the 9- and 12-metric schema generations.
    pub fn parse(text: &str) -> Result<ReportDoc, String> {
        let doc = parse_json(text)?;
        let name = doc
            .get("campaign")
            .and_then(Json::as_str)
            .ok_or("report has no \"campaign\" name")?
            .to_string();
        let req_count = |key: &str| {
            doc.get(key)
                .and_then(Json::as_num)
                .filter(|n| n.is_finite() && *n >= 0.0)
                .map(|n| n as u64)
                .ok_or_else(|| format!("report has no numeric {key:?}"))
        };
        let jobs = req_count("jobs")?;
        let seeds = req_count("seeds")?;
        let cells_json = doc
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("report has no \"cells\" array")?;
        let mut cells = Vec::with_capacity(cells_json.len());
        let mut seen: BTreeMap<CellKey, usize> = BTreeMap::new();
        for (i, cell) in cells_json.iter().enumerate() {
            let parsed = parse_cell(cell).map_err(|e| format!("cell {i} ({name} report): {e}"))?;
            if let Some(first) = seen.insert(parsed.key.clone(), i) {
                return Err(format!(
                    "cells {first} and {i} share the key [{}]; pairing would be ambiguous",
                    parsed.key
                ));
            }
            cells.push(parsed);
        }
        Ok(ReportDoc {
            name,
            jobs,
            seeds,
            cells,
        })
    }

    /// Reads and parses a report file.
    pub fn load(path: &str) -> Result<ReportDoc, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        ReportDoc::parse(&text).map_err(|e| format!("{path}: {e}"))
    }

    /// Multiplies `metric`'s mean (and order statistics, for internal
    /// consistency) by `factor` in every cell that carries it, leaving
    /// the spread untouched — the synthetic-regression injector the CI
    /// gate uses to prove the diff engine actually fires. Returns how
    /// many cells were perturbed.
    pub fn inject(&mut self, metric: &str, factor: f64) -> usize {
        let mut hit = 0;
        for cell in &mut self.cells {
            for (name, summary) in &mut cell.metrics {
                if name == metric {
                    summary.mean *= factor;
                    summary.p50 *= factor;
                    summary.p95 *= factor;
                    summary.min = summary.min.map(|v| v * factor);
                    summary.max = summary.max.map(|v| v * factor);
                    hit += 1;
                }
            }
        }
        hit
    }
}

fn parse_cell(cell: &Json) -> Result<ReportCell, String> {
    let params = cell.get("params").ok_or("cell has no \"params\"")?;
    let req_str = |key: &str| {
        params
            .get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("cell params missing {key:?}"))
    };
    let loss = params
        .get("loss_ppm")
        .and_then(Json::as_num)
        .filter(|n| n.is_finite() && *n >= 0.0)
        .ok_or("cell params missing \"loss_ppm\"")?;
    let key = CellKey {
        scheme: req_str("scheme")?,
        topology: req_str("topology")?,
        loss_ppm: loss as u32,
        fault: req_str("fault")?,
        attacker: req_str("attacker")?,
    };
    let jobs = cell
        .get("jobs")
        .and_then(Json::as_num)
        .filter(|n| n.is_finite() && *n >= 0.0)
        .map(|n| n as u64)
        .ok_or("cell missing \"jobs\"")?;
    let outcomes = match cell.get("outcomes") {
        Some(Json::Obj(fields)) => fields
            .iter()
            .map(|(label, count)| {
                count
                    .as_num()
                    .filter(|n| n.is_finite() && *n >= 0.0)
                    .map(|n| (label.clone(), n as u64))
                    .ok_or_else(|| format!("outcome {label:?} is not a count"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("cell missing \"outcomes\"".to_string()),
    };
    let metrics_json = match cell.get("metrics") {
        Some(Json::Obj(fields)) => fields,
        _ => return Err("cell missing \"metrics\"".to_string()),
    };
    let mut metrics = Vec::with_capacity(metrics_json.len());
    for (name, m) in metrics_json {
        let field = |key: &str| {
            m.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("metric {name:?} missing {key:?}"))
        };
        let n = field("n")?;
        if !(n.is_finite() && n >= 0.0) {
            return Err(format!("metric {name:?} has non-count n"));
        }
        metrics.push((
            name.clone(),
            MetricSummary {
                n: n as u64,
                mean: field("mean")?,
                ci95: field("ci95")?,
                p50: field("p50")?,
                p95: field("p95")?,
                min: m.get("min").and_then(Json::as_num),
                max: m.get("max").and_then(Json::as_num),
            },
        ));
    }
    Ok(ReportCell {
        key,
        jobs,
        outcomes,
        metrics,
    })
}

/// Whether a larger mean of `metric` is the *good* direction. Traffic,
/// latency, energy, and verification-cost metrics all improve
/// downward; only the completion metrics improve upward.
pub fn higher_is_better(metric: &str) -> bool {
    matches!(metric, "completed" | "completion_frac")
}

/// Verdict on one comparison (or one cell, as the worst of its
/// metrics).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// No significant difference (or nothing testable).
    NoChange,
    /// Significant change in the metric's good direction.
    Improvement,
    /// Significant change in the metric's bad direction.
    Regression,
}

impl Verdict {
    /// Stable label for JSON and tables.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::NoChange => "no-change",
            Verdict::Improvement => "improvement",
            Verdict::Regression => "regression",
        }
    }
}

/// One paired (cell × metric) comparison.
#[derive(Clone, Debug)]
pub struct MetricDiff {
    /// Metric name.
    pub name: String,
    /// Baseline (report A) summary statistics.
    pub a: SampleStats,
    /// Candidate (report B) summary statistics.
    pub b: SampleStats,
    /// Mean shift, `b − a`.
    pub delta: f64,
    /// Welch test when both sides have n ≥ 2, else `None`
    /// (mismatched seed counts are fine; missing variance is not).
    pub test: Option<lrs_analysis::WelchTest>,
    /// Benjamini–Hochberg adjusted p-value across the whole diff.
    pub q: f64,
    /// Whether the two 95 % CIs overlap.
    pub ci_overlap: bool,
    /// Cohen's d effect size, signed like `delta` (candidate −
    /// baseline, so a positive d is an increase in B).
    pub effect: Option<f64>,
    /// Whether `q ≤ α`.
    pub significant: bool,
    /// Regression / improvement / no-change.
    pub verdict: Verdict,
}

/// One paired cell.
#[derive(Clone, Debug)]
pub struct CellDiff {
    /// The shared cell key.
    pub key: CellKey,
    /// Metric comparisons over the metric intersection.
    pub metrics: Vec<MetricDiff>,
    /// Metrics only report A carries (schema drift).
    pub a_only_metrics: Vec<String>,
    /// Metrics only report B carries.
    pub b_only_metrics: Vec<String>,
    /// Worst metric verdict.
    pub verdict: Verdict,
}

/// The full diff of two campaign reports.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Report A's campaign name (the baseline).
    pub a_name: String,
    /// Report B's campaign name (the candidate).
    pub b_name: String,
    /// False-discovery rate the verdicts used.
    pub alpha: f64,
    /// Paired cells in canonical key order.
    pub cells: Vec<CellDiff>,
    /// Cells present only in report A.
    pub a_only_cells: Vec<CellKey>,
    /// Cells present only in report B.
    pub b_only_cells: Vec<CellKey>,
    /// Testable comparisons entered into the BH correction.
    pub comparisons: usize,
}

impl DiffReport {
    /// Comparisons judged significant at the configured FDR.
    pub fn significant(&self) -> usize {
        self.metric_diffs().filter(|m| m.significant).count()
    }

    /// Significant changes in the bad direction.
    pub fn regressions(&self) -> usize {
        self.metric_diffs()
            .filter(|m| m.verdict == Verdict::Regression)
            .count()
    }

    /// Significant changes in the good direction.
    pub fn improvements(&self) -> usize {
        self.metric_diffs()
            .filter(|m| m.verdict == Verdict::Improvement)
            .count()
    }

    fn metric_diffs(&self) -> impl Iterator<Item = &MetricDiff> {
        self.cells.iter().flat_map(|c| c.metrics.iter())
    }

    /// Machine-readable JSON diff.
    pub fn to_json(&self) -> Json {
        let cells = self
            .cells
            .iter()
            .map(|cell| {
                let metrics = cell
                    .metrics
                    .iter()
                    .map(|m| {
                        let mut fields = vec![
                            ("name".into(), Json::str(&m.name)),
                            ("n_a".into(), Json::num(m.a.n as f64)),
                            ("n_b".into(), Json::num(m.b.n as f64)),
                            ("mean_a".into(), Json::Num(m.a.mean)),
                            ("mean_b".into(), Json::Num(m.b.mean)),
                            ("delta".into(), Json::Num(m.delta)),
                        ];
                        if let Some(t) = &m.test {
                            fields.push(("t".into(), Json::Num(t.t)));
                            fields.push(("df".into(), Json::Num(t.df)));
                            fields.push(("p".into(), Json::Num(t.p)));
                        }
                        fields.push(("q".into(), Json::Num(m.q)));
                        if let Some(d) = m.effect {
                            fields.push(("cohens_d".into(), Json::Num(d)));
                        }
                        fields.push(("ci95_overlap".into(), Json::Bool(m.ci_overlap)));
                        fields.push(("significant".into(), Json::Bool(m.significant)));
                        fields.push(("verdict".into(), Json::str(m.verdict.label())));
                        Json::Obj(fields)
                    })
                    .collect();
                let mut fields = vec![
                    ("params".into(), cell.key.to_json()),
                    ("verdict".into(), Json::str(cell.verdict.label())),
                    ("metrics".into(), Json::Arr(metrics)),
                ];
                if !cell.a_only_metrics.is_empty() {
                    fields.push((
                        "a_only_metrics".into(),
                        Json::Arr(cell.a_only_metrics.iter().map(Json::str).collect()),
                    ));
                }
                if !cell.b_only_metrics.is_empty() {
                    fields.push((
                        "b_only_metrics".into(),
                        Json::Arr(cell.b_only_metrics.iter().map(Json::str).collect()),
                    ));
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            (
                "campdiff".into(),
                Json::Obj(vec![
                    ("a".into(), Json::str(&self.a_name)),
                    ("b".into(), Json::str(&self.b_name)),
                    ("alpha".into(), Json::Num(self.alpha)),
                    ("comparisons".into(), Json::num(self.comparisons as f64)),
                    ("significant".into(), Json::num(self.significant() as f64)),
                    ("regressions".into(), Json::num(self.regressions() as f64)),
                    ("improvements".into(), Json::num(self.improvements() as f64)),
                ]),
            ),
            (
                "a_only_cells".into(),
                Json::Arr(self.a_only_cells.iter().map(CellKey::to_json).collect()),
            ),
            (
                "b_only_cells".into(),
                Json::Arr(self.b_only_cells.iter().map(CellKey::to_json).collect()),
            ),
            ("cells".into(), Json::Arr(cells)),
        ])
    }

    /// Human-readable diff: one row per *significant* comparison (a
    /// clean diff prints only the summary line), then the pairing
    /// footer.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut table = crate::table::Table::new(vec![
            "cell", "metric", "mean A", "mean B", "Δ%", "q", "d", "CIs", "verdict",
        ]);
        let mut rows = 0;
        for cell in &self.cells {
            for m in cell.metrics.iter().filter(|m| m.significant) {
                let pct = if m.a.mean != 0.0 {
                    format!("{:+.1}%", 100.0 * m.delta / m.a.mean)
                } else {
                    "n/a".to_string()
                };
                table.row(vec![
                    cell.key.to_string(),
                    m.name.clone(),
                    format!("{:.4}", m.a.mean),
                    format!("{:.4}", m.b.mean),
                    pct,
                    format!("{:.2e}", m.q),
                    m.effect.map_or("n/a".into(), |d| format!("{d:+.2}")),
                    if m.ci_overlap { "overlap" } else { "disjoint" }.to_string(),
                    m.verdict.label().to_string(),
                ]);
                rows += 1;
            }
        }
        if rows > 0 {
            out.push_str(&table.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "campdiff {} vs {}: {} paired cells ({} A-only, {} B-only), \
             {} comparisons, {} significant at FDR {} — {} regressions, {} improvements\n",
            self.a_name,
            self.b_name,
            self.cells.len(),
            self.a_only_cells.len(),
            self.b_only_cells.len(),
            self.comparisons,
            self.significant(),
            self.alpha,
            self.regressions(),
            self.improvements(),
        ));
        out
    }
}

/// Diffs two parsed reports: pairs cells by [`CellKey`], tests every
/// paired metric, and applies Benjamini–Hochberg across the whole grid
/// at FDR `alpha`.
pub fn diff_reports(a: &ReportDoc, b: &ReportDoc, alpha: f64) -> Result<DiffReport, String> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(format!("alpha {alpha} out of (0, 1)"));
    }
    let index = |doc: &ReportDoc| -> BTreeMap<CellKey, usize> {
        doc.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (c.key.clone(), i))
            .collect()
    };
    let (ia, ib) = (index(a), index(b));
    let mut cells = Vec::new();
    let mut a_only = Vec::new();
    let mut b_only: Vec<CellKey> = ib
        .keys()
        .filter(|k| !ia.contains_key(*k))
        .cloned()
        .collect();
    b_only.sort();

    // First pass: build every comparison with its raw p-value.
    let mut pvalues = Vec::new();
    for (key, &cai) in &ia {
        let Some(&cbi) = ib.get(key) else {
            a_only.push(key.clone());
            continue;
        };
        let (ca, cb) = (&a.cells[cai], &b.cells[cbi]);
        let mut metrics = Vec::new();
        let mut a_only_metrics = Vec::new();
        for (name, ma) in &ca.metrics {
            let Some(mb) = cb.metric(name) else {
                a_only_metrics.push(name.clone());
                continue;
            };
            let (sa, sb) = (ma.stats(), mb.stats());
            // An all-stalled cell renders null means (NaN here); that
            // is "nothing to test", not a zero-variance certain shift.
            let test = if sa.mean.is_finite() && sb.mean.is_finite() {
                welch_t(sa, sb)
            } else {
                None
            };
            pvalues.push(test.map_or(f64::NAN, |t| t.p));
            metrics.push(MetricDiff {
                name: name.clone(),
                a: sa,
                b: sb,
                delta: sb.mean - sa.mean,
                test,
                q: f64::NAN,
                ci_overlap: ci95_overlap(sa, sb),
                // d(b, a) so the sign matches delta = b − a.
                effect: cohens_d(sb, sa),
                significant: false,
                verdict: Verdict::NoChange,
            });
        }
        let b_only_metrics = cb
            .metrics
            .iter()
            .map(|(n, _)| n.clone())
            .filter(|n| ca.metric(n).is_none())
            .collect();
        cells.push(CellDiff {
            key: key.clone(),
            metrics,
            a_only_metrics,
            b_only_metrics,
            verdict: Verdict::NoChange,
        });
    }

    // Second pass: BH-adjust across the entire grid, then judge.
    let comparisons = pvalues.iter().filter(|p| p.is_finite()).count();
    let q = bh_adjusted_p(&pvalues);
    let mut qi = 0;
    for cell in &mut cells {
        for m in &mut cell.metrics {
            m.q = q[qi];
            qi += 1;
            m.significant = m.q.is_finite() && m.q <= alpha;
            m.verdict = if !m.significant {
                Verdict::NoChange
            } else {
                let worse = if higher_is_better(&m.name) {
                    m.delta < 0.0
                } else {
                    m.delta > 0.0
                };
                if worse {
                    Verdict::Regression
                } else {
                    Verdict::Improvement
                }
            };
        }
        cell.verdict = cell
            .metrics
            .iter()
            .map(|m| m.verdict)
            .max()
            .unwrap_or(Verdict::NoChange);
    }

    Ok(DiffReport {
        a_name: a.name.clone(),
        b_name: b.name.clone(),
        alpha,
        cells,
        a_only_cells: a_only,
        b_only_cells: b_only,
        comparisons,
    })
}

/// Compile-time tie to the current metric schema: `higher_is_better`
/// must know every live metric; a new metric added to
/// [`ExperimentMetrics::NAMES`] without a polarity decision should
/// fail this, not silently default.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExperimentMetrics;

    #[test]
    fn every_live_metric_has_a_polarity() {
        // Exhaustive: lower-is-better is the default, so this test is
        // the reviewed list of exceptions. Touch it when NAMES changes.
        let higher: Vec<&str> = ExperimentMetrics::NAMES
            .iter()
            .copied()
            .filter(|m| higher_is_better(m))
            .collect();
        assert_eq!(higher, vec!["completed", "completion_frac"]);
    }

    #[test]
    fn cell_keys_order_and_display() {
        let key = CellKey {
            scheme: "lr-seluge".into(),
            topology: "star:6".into(),
            loss_ppm: 50_000,
            fault: "none".into(),
            attacker: "none".into(),
        };
        assert_eq!(
            key.to_string(),
            "lr-seluge star:6 loss=50000 fault=none atk=none"
        );
        let mut other = key.clone();
        other.loss_ppm = 200_000;
        assert!(key < other);
    }
}

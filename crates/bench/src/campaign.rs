//! Checkpointed Monte-Carlo campaign engine.
//!
//! A campaign is a fleet of simulation jobs — the full product grid of a
//! [`CampaignSpec`] — executed by a work-stealing pool and aggregated
//! *streamingly*: per grid cell, online mean/variance ([`Welford`]) and
//! P² quantile sketches, so memory stays O(cells) no matter how many
//! runs the grid names. Each job **is** a PR 5 replay capsule
//! (seed × config × topology × fault plan × scenario tags), which buys
//! three properties at once:
//!
//! * any job can be exported as a bit-exact reproducer *before* it runs
//!   ([`Campaign::job_capsule`], via `SimBuilder::capsule`);
//! * any job that ends diagnostically (stalled, invariant violated,
//!   worker panicked) dumps a failure capsule under `failures/`,
//!   immediately consumable by the `replay` binary; and
//! * the campaign state on disk is nothing but a manifest plus an
//!   append-only completion log — kill -9 at any instant loses at most
//!   the jobs in flight.
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/manifest.json   # {"version":1,"spec":{…}} — the canonical spec
//! <dir>/jobs.log        # JSONL, one completed job per line, appended+flushed
//! <dir>/report.json     # per-cell aggregates; written only on completion
//! <dir>/failures/       # job-<id>.jsonl failure capsules
//! ```
//!
//! The manifest embeds the spec verbatim, so `--resume <dir>` needs no
//! spec file and cannot drift from the grid the campaign started with.
//! The log is tolerant of a torn final line (the kill -9 signature) and
//! deduplicates job ids first-wins; before appending, a resumed run
//! truncates any torn tail so a new record is never glued onto it.
//!
//! # Determinism
//!
//! Job results are deterministic (each job's seed derives from its id),
//! but workers complete them in schedule-dependent order, and the
//! streaming estimators are order-*sensitive* in their low-order bits.
//! The aggregator therefore applies results in **canonical job-id
//! order** through a reorder buffer: out-of-order completions wait in a
//! `BTreeMap` until the next id arrives. Final reports are byte-identical
//! across `--threads 1/2/8` and across any kill/resume split.

use crate::capsules::{campaign_params, lr_factory, seluge_factory, ScenarioTags};
use crate::json::{parse_json, Json};
use crate::runner::{matched_seluge_params, test_image, ExperimentMetrics};
use crate::spec::{
    attack_config, build_topology, fault_config, topology_nodes, CampaignSpec, CellParams,
};
use lr_seluge::{Deployment, LrNode};
use lrs_analysis::StreamingSummary;
use lrs_crypto::puzzle::PuzzleKeyChain;
use lrs_crypto::schnorr::Keypair;
use lrs_deluge::attack::MaybeAdversary;
use lrs_deluge::engine::{DisseminationNode, Scheme};
use lrs_deluge::policy::{TxPolicy, UnionPolicy};
use lrs_netsim::attack::AttackPlan;
use lrs_netsim::capsule::{Capsule, SEQUENTIAL_ENGINE, SHARDED_ENGINE};
use lrs_netsim::energy::EnergyModel;
use lrs_netsim::fault::FaultPlan;
use lrs_netsim::metrics::Metrics;
use lrs_netsim::node::{NodeId, PacketKind, Protocol};
use lrs_netsim::sim::RunReport;
use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;
use lrs_netsim::violation::InvariantViolation;
use lrs_netsim::SimBuilder;
use lrs_seluge::{SelugeArtifacts, SelugeScheme};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Manifest file name inside a campaign directory.
pub const MANIFEST: &str = "manifest.json";
/// Completion-log file name (JSONL, append-only).
pub const JOB_LOG: &str = "jobs.log";
/// Consolidated report file name; exists only once every job finished.
pub const REPORT: &str = "report.json";
/// Subdirectory failure capsules land in.
pub const FAILURE_DIR: &str = "failures";

/// Manifest format version this code writes and accepts.
pub const MANIFEST_VERSION: f64 = 1.0;

/// Outcome labels in fixed report order (the order of
/// [`Outcome`](lrs_netsim::sim::Outcome)'s variants).
pub const OUTCOME_LABELS: [&str; 6] = [
    "complete",
    "timed_out",
    "drained",
    "stalled",
    "invariant_violated",
    "worker_panicked",
];

/// Outcome labels that dump a failure capsule.
const DIAGNOSTIC_LABELS: [&str; 3] = ["stalled", "invariant_violated", "worker_panicked"];

/// One completed job, as logged: the unit of checkpointing.
///
/// Metrics travel as an array in [`ExperimentMetrics::NAMES`] order;
/// floats are rendered shortest-round-trip (NaN as `null`), so a logged
/// record reparses to the exact bits the run produced — the property
/// resume bit-identity rests on.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRecord {
    /// Global job id: `cell_index * seeds + repetition`.
    pub job: usize,
    /// Grid-cell index in canonical [`CampaignSpec::cells`] order.
    pub cell: usize,
    /// Simulator seed the job ran with.
    pub seed: u64,
    /// Outcome label (see [`OUTCOME_LABELS`]).
    pub outcome: String,
    /// Metric values in [`ExperimentMetrics::NAMES`] order.
    pub metrics: [f64; ExperimentMetrics::NAMES.len()],
}

impl JobRecord {
    /// Whether this job ended diagnostically (and dumped a capsule).
    pub fn is_failure(&self) -> bool {
        DIAGNOSTIC_LABELS.contains(&self.outcome.as_str())
    }

    /// The record as one log line's JSON value.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("job".into(), Json::Num(self.job as f64)),
            ("cell".into(), Json::Num(self.cell as f64)),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("outcome".into(), Json::str(&self.outcome)),
            (
                "metrics".into(),
                Json::Arr(self.metrics.iter().map(|&v| Json::Num(v)).collect()),
            ),
        ])
    }

    /// Parses one log line's JSON value.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_num)
                .filter(|n| n.is_finite() && *n >= 0.0)
                .ok_or_else(|| format!("job record is missing numeric {key:?}"))
        };
        let outcome = v
            .get("outcome")
            .and_then(Json::as_str)
            .ok_or("job record is missing \"outcome\"")?
            .to_string();
        if !OUTCOME_LABELS.contains(&outcome.as_str()) {
            return Err(format!("job record has unknown outcome {outcome:?}"));
        }
        let arr = v
            .get("metrics")
            .and_then(Json::as_arr)
            .ok_or("job record is missing \"metrics\"")?;
        if arr.len() != ExperimentMetrics::NAMES.len() {
            return Err(format!(
                "job record has {} metrics; expected {}",
                arr.len(),
                ExperimentMetrics::NAMES.len()
            ));
        }
        let mut metrics = [0.0; ExperimentMetrics::NAMES.len()];
        for (slot, item) in metrics.iter_mut().zip(arr) {
            *slot = item
                .as_num()
                .ok_or("job record metric is not a number or null")?;
        }
        Ok(JobRecord {
            job: num("job")? as usize,
            cell: num("cell")? as usize,
            seed: num("seed")? as u64,
            outcome,
            metrics,
        })
    }
}

/// Per-cell streaming state: O(1) per metric, O(cells) total.
struct CellAgg {
    jobs: u64,
    outcomes: [u64; 6],
    metrics: Vec<StreamingSummary>,
    failures: Vec<usize>,
}

impl CellAgg {
    fn new() -> Self {
        CellAgg {
            jobs: 0,
            outcomes: [0; 6],
            metrics: (0..ExperimentMetrics::NAMES.len())
                .map(|_| StreamingSummary::new())
                .collect(),
            failures: Vec::new(),
        }
    }
}

/// Canonical-order streaming aggregator.
///
/// Records may arrive in any order (workers race, resume replays the
/// log); they are *applied* strictly in job-id order via a reorder
/// buffer, so the final estimator state — and thus the rendered report —
/// is independent of thread count and of where a crash split the run.
struct Aggregator {
    cells: Vec<CellAgg>,
    pending: BTreeMap<usize, JobRecord>,
    next: usize,
}

impl Aggregator {
    fn new(cells: usize) -> Self {
        Aggregator {
            cells: (0..cells).map(|_| CellAgg::new()).collect(),
            pending: BTreeMap::new(),
            next: 0,
        }
    }

    fn insert(&mut self, record: JobRecord) -> Result<(), String> {
        if record.job < self.next || self.pending.contains_key(&record.job) {
            return Err(format!("job {} aggregated twice", record.job));
        }
        self.pending.insert(record.job, record);
        while let Some(record) = self.pending.remove(&self.next) {
            self.apply(&record)?;
            self.next += 1;
        }
        Ok(())
    }

    fn apply(&mut self, record: &JobRecord) -> Result<(), String> {
        let cell = self
            .cells
            .get_mut(record.cell)
            .ok_or_else(|| format!("job {} names cell {} out of range", record.job, record.cell))?;
        cell.jobs += 1;
        let idx = OUTCOME_LABELS
            .iter()
            .position(|&l| l == record.outcome)
            .expect("outcome validated in from_json");
        cell.outcomes[idx] += 1;
        for (summary, &value) in cell.metrics.iter_mut().zip(&record.metrics) {
            summary.push(value);
        }
        if record.is_failure() {
            cell.failures.push(record.job);
        }
        Ok(())
    }

    fn applied(&self) -> usize {
        self.next
    }
}

/// Summary of a finished campaign, for callers of [`Campaign::run`].
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Total jobs aggregated (grid size).
    pub jobs: usize,
    /// Failure-capsule paths, one per diagnostic job, in job order.
    pub failures: Vec<String>,
    /// The rendered `report.json` document.
    pub json: Json,
}

/// A campaign bound to its on-disk directory.
pub struct Campaign {
    spec: CampaignSpec,
    cells: Vec<CellParams>,
    dir: PathBuf,
}

impl Campaign {
    /// Starts a fresh campaign: creates `<dir>` (and `failures/`) and
    /// writes the manifest. Refuses a directory that already holds one —
    /// that is what [`resume`](Self::resume) is for.
    pub fn create(spec: CampaignSpec, dir: impl Into<PathBuf>) -> Result<Self, String> {
        let dir = dir.into();
        let manifest = dir.join(MANIFEST);
        if manifest.exists() {
            return Err(format!(
                "{} already holds a campaign; resume it instead",
                dir.display()
            ));
        }
        fs::create_dir_all(dir.join(FAILURE_DIR))
            .map_err(|e| format!("create {}: {e}", dir.display()))?;
        let doc = Json::Obj(vec![
            ("version".into(), Json::Num(MANIFEST_VERSION)),
            ("spec".into(), spec.to_json()),
        ]);
        fs::write(&manifest, doc.render() + "\n")
            .map_err(|e| format!("write {}: {e}", manifest.display()))?;
        Ok(Self::offline(spec, dir))
    }

    /// Binds a campaign to `dir` purely in memory — no directory, no
    /// manifest, nothing on disk. For spec-only operations like
    /// `--export-job`, where creating (or colliding with) an on-disk
    /// campaign would be a side effect, not a feature. Running an
    /// offline campaign works but checkpoints into a `dir` that was
    /// never initialized; use [`create`](Self::create) for that.
    pub fn offline(spec: CampaignSpec, dir: impl Into<PathBuf>) -> Self {
        Campaign {
            cells: spec.cells(),
            spec,
            dir: dir.into(),
        }
    }

    /// Reopens the campaign in `<dir>` from its manifest. The embedded
    /// spec is re-validated, so a hand-edited manifest fails loudly.
    pub fn resume(dir: impl Into<PathBuf>) -> Result<Self, String> {
        let dir = dir.into();
        let manifest = dir.join(MANIFEST);
        let text = fs::read_to_string(&manifest)
            .map_err(|e| format!("read {}: {e}", manifest.display()))?;
        let doc = parse_json(&text).map_err(|e| format!("{}: {e}", manifest.display()))?;
        let version = doc.get("version").and_then(Json::as_num).unwrap_or(0.0);
        if version != MANIFEST_VERSION {
            return Err(format!(
                "{}: manifest version {version} unsupported (want {MANIFEST_VERSION})",
                manifest.display()
            ));
        }
        let spec_doc = doc
            .get("spec")
            .ok_or_else(|| format!("{}: manifest has no spec", manifest.display()))?;
        let spec = CampaignSpec::from_json(spec_doc)?;
        fs::create_dir_all(dir.join(FAILURE_DIR))
            .map_err(|e| format!("create {}: {e}", dir.display()))?;
        Ok(Campaign {
            cells: spec.cells(),
            spec,
            dir,
        })
    }

    /// The campaign's spec (as embedded in the manifest).
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// The campaign directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total jobs in the grid.
    pub fn total_jobs(&self) -> usize {
        self.cells.len() * self.spec.seeds as usize
    }

    /// The simulator seed job `id` runs with.
    pub fn job_seed(&self, job: usize) -> u64 {
        self.spec.seed_base + job as u64
    }

    /// Completed jobs from the log, deduplicated first-wins. A torn
    /// final line (the kill -9 signature) is ignored; a corrupt line
    /// anywhere *else* is an error — that is damage, not a crash.
    pub fn completed(&self) -> Result<Vec<JobRecord>, String> {
        let path = self.dir.join(JOB_LOG);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(format!("read {}: {e}", path.display())),
        };
        let lines: Vec<&str> = text.lines().collect();
        let mut seen = BTreeSet::new();
        let mut records = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let parsed = parse_json(line).and_then(|v| JobRecord::from_json(&v));
            match parsed {
                Ok(record) => {
                    if record.job >= self.total_jobs() {
                        return Err(format!(
                            "{}:{}: job {} outside this campaign's {} jobs",
                            path.display(),
                            i + 1,
                            record.job,
                            self.total_jobs()
                        ));
                    }
                    if seen.insert(record.job) {
                        records.push(record);
                    }
                }
                Err(e) if i + 1 == lines.len() => {
                    // Torn tail: the process died mid-append. The job
                    // will simply re-run.
                    eprintln!(
                        "campaign: ignoring torn final log line ({} bytes): {e}",
                        line.len()
                    );
                }
                Err(e) => return Err(format!("{}:{}: {e}", path.display(), i + 1)),
            }
        }
        Ok(records)
    }

    /// Truncates a torn final log line (one with no trailing newline —
    /// the kill -9 mid-append signature) back to the end of the last
    /// complete line. [`completed`](Self::completed) merely *tolerates*
    /// a torn tail; before appending it must be removed, or the first
    /// new record would be glued onto it, turning a recoverable torn
    /// tail into a permanently corrupt mid-file line.
    fn repair_log_tail(&self) -> Result<(), String> {
        let path = self.dir.join(JOB_LOG);
        let mut file = match fs::OpenOptions::new().read(true).write(true).open(&path) {
            Ok(file) => file,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(format!("open {}: {e}", path.display())),
        };
        let len = file
            .metadata()
            .map_err(|e| format!("stat {}: {e}", path.display()))?
            .len();
        if len == 0 {
            return Ok(());
        }
        // Scan backwards in chunks for the last newline; everything
        // after it is the torn tail. Log lines are short, so the first
        // chunk almost always settles it.
        let mut keep = 0;
        let mut end = len;
        while end > 0 {
            let start = end.saturating_sub(4096);
            let mut buf = vec![0u8; (end - start) as usize];
            file.seek(SeekFrom::Start(start))
                .and_then(|_| file.read_exact(&mut buf))
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            if end == len && buf.last() == Some(&b'\n') {
                return Ok(());
            }
            if let Some(i) = buf.iter().rposition(|&b| b == b'\n') {
                keep = start + i as u64 + 1;
                break;
            }
            end = start;
        }
        eprintln!(
            "campaign: truncating torn {}-byte tail of {} before appending",
            len - keep,
            path.display()
        );
        file.set_len(keep)
            .map_err(|e| format!("truncate {}: {e}", path.display()))?;
        file.sync_data()
            .map_err(|e| format!("sync {}: {e}", path.display()))?;
        Ok(())
    }

    /// Runs (or resumes) the campaign on `threads` workers.
    ///
    /// `kill_after` caps how many *new* jobs this invocation executes
    /// before stopping without a report — the crash-resume tests' way of
    /// simulating a kill at a deterministic point. `None` runs to
    /// completion, writes `report.json`, and returns the report;
    /// `Some(k)` short of the remaining work returns `Ok(None)`.
    pub fn run(
        &self,
        threads: usize,
        kill_after: Option<usize>,
    ) -> Result<Option<CampaignReport>, String> {
        let total = self.total_jobs();
        let logged = self.completed()?;
        let mut done = BTreeSet::new();
        let mut agg = Aggregator::new(self.cells.len());
        for record in logged {
            done.insert(record.job);
            agg.insert(record)?;
        }
        let todo: Vec<usize> = (0..total).filter(|id| !done.contains(id)).collect();
        let limit = kill_after.unwrap_or(todo.len()).min(todo.len());
        let killed = limit < todo.len();

        if limit > 0 {
            self.repair_log_tail()?;
            let log_path = self.dir.join(JOB_LOG);
            let mut log = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&log_path)
                .map_err(|e| format!("open {}: {e}", log_path.display()))?;
            let next = AtomicUsize::new(0);
            let workers = threads.max(1).min(limit);
            let (tx, rx) = mpsc::channel::<JobRecord>();
            std::thread::scope(|scope| -> Result<(), String> {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let (next, todo) = (&next, &todo);
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= limit {
                            break;
                        }
                        if tx.send(self.execute(todo[i])).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                // Checkpoint-then-aggregate, one line per completion.
                // The aggregator is fed the *reparsed* line, so the live
                // path and the resume path see byte-for-byte the same
                // values.
                for record in rx {
                    let line = record.to_json().render();
                    log.write_all(line.as_bytes())
                        .and_then(|_| log.write_all(b"\n"))
                        .and_then(|_| log.flush())
                        .map_err(|e| format!("append {}: {e}", log_path.display()))?;
                    let reparsed = JobRecord::from_json(&parse_json(&line)?)?;
                    agg.insert(reparsed)?;
                }
                Ok(())
            })?;
        }

        if killed {
            return Ok(None);
        }
        if agg.applied() != total {
            return Err(format!(
                "aggregated {} of {total} jobs; completion log has gaps",
                agg.applied()
            ));
        }
        let json = self.render_report(&agg);
        let path = self.dir.join(REPORT);
        fs::write(&path, json.render() + "\n")
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        let failures = agg
            .cells
            .iter()
            .flat_map(|c| c.failures.iter())
            .map(|&job| self.failure_capsule_path(job))
            .collect();
        Ok(Some(CampaignReport {
            jobs: total,
            failures,
            json,
        }))
    }

    /// Renders the consolidated per-cell report. Deliberately excludes
    /// wall-clock time and thread count, so the document is a pure
    /// function of the aggregator state — the golden-file and
    /// bit-identity tests diff it byte for byte.
    fn render_report(&self, agg: &Aggregator) -> Json {
        let cells = agg
            .cells
            .iter()
            .zip(&self.cells)
            .map(|(state, params)| {
                let outcomes = OUTCOME_LABELS
                    .iter()
                    .zip(state.outcomes)
                    .filter(|&(_, count)| count > 0)
                    .map(|(&label, count)| (label.to_string(), Json::Num(count as f64)))
                    .collect();
                let metrics = ExperimentMetrics::NAMES
                    .iter()
                    .zip(&state.metrics)
                    .map(|(&name, s)| {
                        (
                            name.to_string(),
                            Json::Obj(vec![
                                ("n".into(), Json::Num(s.moments.count() as f64)),
                                ("mean".into(), Json::Num(s.moments.mean())),
                                ("ci95".into(), Json::Num(s.moments.ci95())),
                                ("p50".into(), Json::Num(s.p50.estimate())),
                                ("p95".into(), Json::Num(s.p95.estimate())),
                                ("min".into(), Json::Num(s.extrema.min())),
                                ("max".into(), Json::Num(s.extrema.max())),
                            ]),
                        )
                    })
                    .collect();
                let mut fields = vec![
                    (
                        "params".into(),
                        Json::Obj(vec![
                            ("scheme".into(), Json::str(&params.scheme)),
                            ("topology".into(), Json::str(&params.topology)),
                            ("loss_ppm".into(), Json::num(params.loss_ppm)),
                            ("fault".into(), Json::str(&params.fault)),
                            ("attacker".into(), Json::str(&params.attacker)),
                        ]),
                    ),
                    ("jobs".into(), Json::Num(state.jobs as f64)),
                    ("outcomes".into(), Json::Obj(outcomes)),
                    ("metrics".into(), Json::Obj(metrics)),
                ];
                if !state.failures.is_empty() {
                    fields.push((
                        "failures".into(),
                        Json::Arr(
                            state
                                .failures
                                .iter()
                                .map(|&job| Json::Num(job as f64))
                                .collect(),
                        ),
                    ));
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("campaign".into(), Json::str(&self.spec.name)),
            ("jobs".into(), Json::Num(self.total_jobs() as f64)),
            ("seeds".into(), Json::Num(self.spec.seeds as f64)),
            ("cells".into(), Json::Arr(cells)),
        ])
    }

    /// Where job `id`'s failure capsule lands if it ends diagnostically.
    pub fn failure_capsule_path(&self, job: usize) -> String {
        self.dir
            .join(FAILURE_DIR)
            .join(format!("job-{job:06}.jsonl"))
            .display()
            .to_string()
    }

    /// The scenario tags job `id` runs (and is capsule-tagged) with.
    /// Plan-token attackers get a seeded [`AttackPlan`] generated over
    /// the job's topology, so the tag pins the exact adversary placement
    /// the job executed.
    fn job_tags(
        &self,
        cell: &CellParams,
        seed: u64,
        topology: &Topology,
    ) -> Result<ScenarioTags, String> {
        let mut tags = ScenarioTags::new(
            &cell.scheme,
            "campaign",
            self.spec.image_bytes,
            "campaign keys",
        );
        if cell.attacker == "storm" {
            tags = tags.with_attacker(NodeId(topology.len() as u32 - 1));
        } else if let Some(config) = attack_config(&cell.attacker)? {
            tags = tags.with_attack_plan(AttackPlan::generate(&config, topology, seed));
        }
        Ok(tags)
    }

    /// Exports job `id` as a replay capsule *without running it*: the
    /// exact seed, config, topology, fault plan, and scenario tags the
    /// job executes, consumable by the `replay` binary.
    pub fn job_capsule(&self, job: usize) -> Result<Capsule, String> {
        if job >= self.total_jobs() {
            return Err(format!(
                "job {job} outside this campaign's {} jobs",
                self.total_jobs()
            ));
        }
        let cell = &self.cells[job / self.spec.seeds as usize];
        let seed = self.job_seed(job);
        let topology = build_topology(&cell.topology, seed)?;
        let faults = FaultPlan::generate(
            &fault_config(&cell.fault, Duration::from_secs(self.spec.max_sim_s))?,
            &topology,
            seed,
        );
        let (engine, shards) = self.job_engine(&cell.topology)?;
        let scenario = self.job_tags(cell, seed, &topology)?.pairs();
        Ok(Capsule {
            seed,
            engine: engine.to_string(),
            shards,
            deadline: Duration::from_secs(self.spec.deadline_s),
            config: self.spec.sim_config(cell.loss_ppm),
            topology,
            faults,
            scenario,
            digests: Vec::new(),
        })
    }

    /// Engine and shard count a job on `topology` runs with: `auto`
    /// hands grids at/above the threshold to the sharded engine.
    fn job_engine(&self, topology: &str) -> Result<(&'static str, usize), String> {
        let nodes = topology_nodes(topology)?;
        let sharded = match self.spec.engine.as_str() {
            "sharded" => true,
            "auto" => nodes >= self.spec.sharded_threshold,
            _ => false,
        };
        if sharded {
            Ok((SHARDED_ENGINE, self.spec.shards))
        } else {
            Ok((SEQUENTIAL_ENGINE, 1))
        }
    }

    /// Executes one job to a loggable record.
    ///
    /// Spec and tokens were validated at parse time, so failures here
    /// are I/O-free logic errors; panicking (not `Err`) is correct —
    /// the job would never become retryable.
    fn execute(&self, job: usize) -> JobRecord {
        let cell = &self.cells[job / self.spec.seeds as usize];
        let seed = self.job_seed(job);
        let topology = build_topology(&cell.topology, seed).expect("validated at parse time");
        let tags = self
            .job_tags(cell, seed, &topology)
            .expect("tags validated at parse time");
        match cell.scheme.as_str() {
            "lr-seluge" => {
                let make = lr_factory(&tags).expect("campaign profile is registered");
                self.run_job(job, cell, seed, &tags, topology, make, lr_invariant(&tags))
            }
            "seluge" => {
                let make = seluge_factory(&tags).expect("campaign profile is registered");
                self.run_job(
                    job,
                    cell,
                    seed,
                    &tags,
                    topology,
                    make,
                    seluge_invariant(&tags),
                )
            }
            other => unreachable!("scheme {other:?} validated at parse time"),
        }
    }

    /// Scheme-generic single-job runner: builds the sim from the cell's
    /// parameters, arms the flight recorder, runs on the engine
    /// [`job_engine`](Self::job_engine) picked, and extracts metrics.
    #[allow(clippy::too_many_arguments)]
    fn run_job<S, Pol, F, V>(
        &self,
        job: usize,
        cell: &CellParams,
        seed: u64,
        tags: &ScenarioTags,
        topology: Topology,
        make: F,
        invariant: V,
    ) -> JobRecord
    where
        S: Scheme + 'static,
        Pol: TxPolicy + 'static,
        F: Fn(NodeId) -> MaybeAdversary<DisseminationNode<S, Pol>> + Sync,
        V: Fn(&MaybeAdversary<DisseminationNode<S, Pol>>, NodeId) -> Result<(), InvariantViolation>
            + Send
            + Sync
            + 'static,
    {
        let nodes = topology.len();
        let faults = FaultPlan::generate(
            &fault_config(&cell.fault, Duration::from_secs(self.spec.max_sim_s))
                .expect("validated at parse time"),
            &topology,
            seed,
        );
        let deadline = Duration::from_secs(self.spec.deadline_s);
        let (engine, shards) = self
            .job_engine(&cell.topology)
            .expect("validated at parse time");
        let mut builder = SimBuilder::new(topology, seed, make)
            .config(self.spec.sim_config(cell.loss_ppm))
            .faults(faults)
            .invariants(invariant)
            .capsule_on_failure(self.failure_capsule_path(job));
        for (key, value) in tags.pairs() {
            builder = builder.scenario(key, value);
        }

        let (report, totals, metrics, energy_j) = if engine == SHARDED_ENGINE {
            let run = builder
                .shards(shards)
                .run_sharded(deadline, |_, node| node.honest().map(harvest_node));
            let mut totals = HarvestTotals::default();
            for h in run.harvest.into_iter().flatten() {
                totals.add(h);
            }
            let energy_j = run.energy.total_joules(&EnergyModel::default());
            (run.report, totals, run.metrics, energy_j)
        } else {
            let mut sim = builder.build();
            let report = sim.run(deadline);
            let mut totals = HarvestTotals::default();
            for i in 0..nodes {
                if let Some(n) = sim.node(NodeId(i as u32)).honest() {
                    totals.add(harvest_node(n));
                }
            }
            let energy_j = sim.energy().total_joules(&EnergyModel::default());
            let metrics = sim.metrics().clone();
            (report, totals, metrics, energy_j)
        };

        JobRecord {
            job,
            cell: cell.index,
            seed,
            outcome: report.outcome.label().to_string(),
            metrics: extract_metrics(&report, &metrics, &totals, energy_j),
        }
    }
}

/// Per-honest-node observables harvested after a run: signature
/// verifications, authentication rejections, verification operations
/// (hashes + puzzle checks + signature verifications), and completion
/// (1.0 / 0.0). Attackers are excluded — degradation is measured over
/// the honest population only.
fn harvest_node<S: Scheme, Pol: TxPolicy>(n: &DisseminationNode<S, Pol>) -> (f64, f64, f64, f64) {
    let cost = n.scheme().cost();
    let st = n.stats();
    (
        cost.signature_verifications as f64,
        (st.auth_rejects + st.mac_rejects) as f64,
        (cost.hashes + cost.puzzle_checks + cost.signature_verifications) as f64,
        if n.is_complete() { 1.0 } else { 0.0 },
    )
}

/// Network-wide totals of [`harvest_node`] over the honest population.
#[derive(Clone, Copy, Debug, Default)]
struct HarvestTotals {
    honest: f64,
    sig: f64,
    rejects: f64,
    verify_ops: f64,
    complete: f64,
}

impl HarvestTotals {
    fn add(&mut self, (sig, rejects, verify_ops, complete): (f64, f64, f64, f64)) {
        self.honest += 1.0;
        self.sig += sig;
        self.rejects += rejects;
        self.verify_ops += verify_ops;
        self.complete += complete;
    }
}

/// Metric extraction shared by both engines, in
/// [`ExperimentMetrics::NAMES`] order.
fn extract_metrics(
    report: &RunReport,
    m: &Metrics,
    totals: &HarvestTotals,
    energy_j: f64,
) -> [f64; ExperimentMetrics::NAMES.len()] {
    let em = ExperimentMetrics {
        page_data_pkts: m.tx_packets(PacketKind::Data) as f64,
        data_pkts: (m.tx_packets(PacketKind::Data)
            + m.tx_packets(PacketKind::HashPage)
            + m.tx_packets(PacketKind::Signature)) as f64,
        snack_pkts: m.tx_packets(PacketKind::Snack) as f64,
        adv_pkts: m.tx_packets(PacketKind::Adv) as f64,
        total_bytes: m.total_tx_bytes() as f64,
        latency_s: report.latency.map(|t| t.as_secs_f64()).unwrap_or(f64::NAN),
        completed: if report.all_complete { 1.0 } else { 0.0 },
        sig_verifications: totals.sig,
        auth_rejects: totals.rejects,
        completion_frac: if totals.honest > 0.0 {
            totals.complete / totals.honest
        } else {
            f64::NAN
        },
        verify_inflation: if totals.honest > 0.0 {
            totals.verify_ops / totals.honest
        } else {
            f64::NAN
        },
        energy_j,
    };
    let mut out = [0.0; ExperimentMetrics::NAMES.len()];
    for (slot, (_, value)) in out.iter_mut().zip(em.named()) {
        *slot = value;
    }
    out
}

/// Per-delivery invariant check for LR-Seluge campaign jobs.
fn lr_invariant(
    tags: &ScenarioTags,
) -> impl Fn(&MaybeAdversary<LrNode>, NodeId) -> Result<(), InvariantViolation> + Send + Sync {
    let p = campaign_params(tags.image_len);
    let image = test_image(tags.image_len);
    let deployment = Deployment::new(&image, p, tags.key_context.as_bytes());
    let artifacts = deployment.artifacts().clone();
    move |node, _id| match node.honest() {
        Some(n) => n.scheme().verify_invariants(&artifacts, &image),
        None => Ok(()),
    }
}

/// Per-delivery invariant check for Seluge campaign jobs.
#[allow(clippy::type_complexity)]
fn seluge_invariant(
    tags: &ScenarioTags,
) -> impl Fn(
    &MaybeAdversary<DisseminationNode<SelugeScheme, UnionPolicy>>,
    NodeId,
) -> Result<(), InvariantViolation>
       + Send
       + Sync {
    let sp = matched_seluge_params(&campaign_params(tags.image_len));
    let image = test_image(tags.image_len);
    let context = tags.key_context.as_bytes();
    let kp = Keypair::from_seed(context);
    let chain = PuzzleKeyChain::generate(context, sp.version as u32 + 4);
    let artifacts = SelugeArtifacts::build(&image, sp, &kp, &chain);
    move |node, _id| match node.honest() {
        Some(n) => n.scheme().verify_invariants(&artifacts, &image),
        None => Ok(()),
    }
}

//! Shared experiment runners for all figures and tables.

use lr_seluge::{Deployment, LrSelugeParams};
use lrs_crypto::cluster::ClusterKey;
use lrs_crypto::puzzle::{Puzzle, PuzzleKeyChain};
use lrs_crypto::schnorr::Keypair;
use lrs_deluge::engine::{DisseminationNode, EngineConfig, Scheme};
use lrs_deluge::image::{DelugeImage, DelugeScheme, ImageParams};
use lrs_deluge::policy::UnionPolicy;
use lrs_netsim::medium::MediumConfig;
use lrs_netsim::node::{NodeId, PacketKind};
use lrs_netsim::sim::{SimConfig, Simulator};

use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;
use lrs_netsim::SimBuilder;
use lrs_seluge::{SelugeArtifacts, SelugeParams, SelugeScheme};

/// The metrics the paper reports, per run (or averaged over seeds).
///
/// `PartialEq` is exact (bitwise on the floats): the determinism tests
/// assert that a given seed produces the *identical* metrics regardless
/// of thread count, not merely close ones.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExperimentMetrics {
    /// Code-page data packets (excludes hash-page and signature packets).
    pub page_data_pkts: f64,
    /// All data-bearing packets (pages + hash page + signature).
    pub data_pkts: f64,
    /// SNACK packets.
    pub snack_pkts: f64,
    /// Advertisement packets.
    pub adv_pkts: f64,
    /// Total communication cost in bytes across all packet kinds.
    pub total_bytes: f64,
    /// Dissemination latency in seconds (time the last node completed).
    pub latency_s: f64,
    /// Fraction of runs in which every node completed.
    pub completed: f64,
    /// Network-wide signature verifications.
    pub sig_verifications: f64,
    /// Network-wide authentication rejections (data + control).
    pub auth_rejects: f64,
    /// Fraction of nodes that completed — the graceful-degradation
    /// outcome, meaningful even when `completed` is 0.
    pub completion_frac: f64,
    /// Mean verification operations (hashes + puzzle checks + signature
    /// verifications) per node. Under a flood this quantifies how much
    /// extra checking the adversary extracted from each victim.
    pub verify_inflation: f64,
    /// Total radio energy across all nodes in joules (default
    /// CC1000-class model) — the adversary's energy-drain yield.
    pub energy_j: f64,
}

impl ExperimentMetrics {
    /// Stable metric names, in reporting order. These are the CSV/JSON
    /// column keys; renaming one is a result-schema change.
    pub const NAMES: [&'static str; 12] = [
        "page_data_pkts",
        "data_pkts",
        "snack_pkts",
        "adv_pkts",
        "total_bytes",
        "latency_s",
        "completed",
        "sig_verifications",
        "auth_rejects",
        "completion_frac",
        "verify_inflation",
        "energy_j",
    ];

    /// The metrics as `(name, value)` pairs, in [`Self::NAMES`] order.
    pub fn named(&self) -> [(&'static str, f64); 12] {
        [
            ("page_data_pkts", self.page_data_pkts),
            ("data_pkts", self.data_pkts),
            ("snack_pkts", self.snack_pkts),
            ("adv_pkts", self.adv_pkts),
            ("total_bytes", self.total_bytes),
            ("latency_s", self.latency_s),
            ("completed", self.completed),
            ("sig_verifications", self.sig_verifications),
            ("auth_rejects", self.auth_rejects),
            ("completion_frac", self.completion_frac),
            ("verify_inflation", self.verify_inflation),
            ("energy_j", self.energy_j),
        ]
    }

    /// Value of the metric called `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of [`Self::NAMES`].
    pub fn get(&self, name: &str) -> f64 {
        self.named()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("unknown metric {name:?}"))
    }

    fn add(&mut self, other: &ExperimentMetrics) {
        self.page_data_pkts += other.page_data_pkts;
        self.data_pkts += other.data_pkts;
        self.snack_pkts += other.snack_pkts;
        self.adv_pkts += other.adv_pkts;
        self.total_bytes += other.total_bytes;
        self.latency_s += other.latency_s;
        self.completed += other.completed;
        self.sig_verifications += other.sig_verifications;
        self.auth_rejects += other.auth_rejects;
        self.completion_frac += other.completion_frac;
        self.verify_inflation += other.verify_inflation;
        self.energy_j += other.energy_j;
    }

    fn scale(&mut self, f: f64) {
        self.page_data_pkts *= f;
        self.data_pkts *= f;
        self.snack_pkts *= f;
        self.adv_pkts *= f;
        self.total_bytes *= f;
        self.latency_s *= f;
        self.completed *= f;
        self.sig_verifications *= f;
        self.auth_rejects *= f;
        self.completion_frac *= f;
        self.verify_inflation *= f;
        self.energy_j *= f;
    }
}

/// Everything describing one simulation run.
#[derive(Clone)]
pub struct RunSpec {
    /// Network topology (node 0 is the base station).
    pub topology: Topology,
    /// Radio/loss configuration.
    pub medium: MediumConfig,
    /// Virtual-time budget before declaring the run stalled.
    pub deadline: Duration,
    /// Engine (timer) configuration.
    pub engine: EngineConfig,
}

impl RunSpec {
    /// A one-hop star of `n_receivers` + base with app-layer loss `p`
    /// (§VI-A: perfect PHY, i.i.d. app-layer drops).
    pub fn one_hop(n_receivers: usize, p: f64) -> Self {
        RunSpec {
            topology: Topology::star(n_receivers + 1),
            medium: MediumConfig {
                app_loss: p,
                ..MediumConfig::default()
            },
            deadline: Duration::from_secs(100_000),
            engine: EngineConfig::default(),
        }
    }
}

/// Deterministic pseudo-random image bytes.
pub fn test_image(len: usize) -> Vec<u8> {
    (0..len as u64)
        .map(|i| {
            let mut z = i.wrapping_mul(0x9e3779b97f4a7c15) ^ 0x1234_5678;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            (z >> 32) as u8
        })
        .collect()
}

fn collect<S, P>(
    sim: &Simulator<DisseminationNode<S, P>>,
    all_complete: bool,
    latency: Option<lrs_netsim::time::SimTime>,
) -> ExperimentMetrics
where
    S: Scheme,
    P: lrs_deluge::policy::TxPolicy,
{
    let m = sim.metrics();
    let n = sim.topology().len();
    let mut sig_verifications = 0.0;
    let mut auth_rejects = 0.0;
    let mut verify_ops = 0.0;
    for i in 0..n {
        let node = sim.node(NodeId(i as u32));
        let cost = node.scheme().cost();
        sig_verifications += cost.signature_verifications as f64;
        verify_ops += (cost.hashes + cost.puzzle_checks + cost.signature_verifications) as f64;
        let st = node.stats();
        auth_rejects += (st.auth_rejects + st.mac_rejects) as f64;
    }
    ExperimentMetrics {
        completion_frac: m.completion_fraction(n),
        verify_inflation: verify_ops / n as f64,
        energy_j: sim
            .energy()
            .total_joules(&lrs_netsim::energy::EnergyModel::default()),
        page_data_pkts: m.tx_packets(PacketKind::Data) as f64,
        data_pkts: (m.tx_packets(PacketKind::Data)
            + m.tx_packets(PacketKind::HashPage)
            + m.tx_packets(PacketKind::Signature)) as f64,
        snack_pkts: m.tx_packets(PacketKind::Snack) as f64,
        adv_pkts: m.tx_packets(PacketKind::Adv) as f64,
        total_bytes: m.total_tx_bytes() as f64,
        latency_s: latency.map(|t| t.as_secs_f64()).unwrap_or(f64::NAN),
        completed: if all_complete { 1.0 } else { 0.0 },
        sig_verifications,
        auth_rejects,
    }
}

/// Runs LR-Seluge once and collects the metrics.
pub fn run_lr(spec: &RunSpec, params: LrSelugeParams, seed: u64) -> ExperimentMetrics {
    let image = test_image(params.image_len);
    let deployment = Deployment::new(&image, params, b"bench keys").with_engine_config(spec.engine);
    let cfg = SimConfig {
        medium: spec.medium,
        ..SimConfig::default()
    };
    // One digest memo per run: a broadcast hashed by one receiver is
    // served from memory at the others (per-node `hashes` counters are
    // unaffected; hits land in `memoized_hashes`). The base-station
    // artifacts enumerate every predetermined packet, so the memo is
    // warmed up front in multi-buffer batches instead of filling
    // packet-by-packet on first reception.
    let digests = lr_seluge::scheme::PacketDigestCache::default();
    deployment.warm_digest_cache(&digests);
    let mut sim = SimBuilder::new(spec.topology.clone(), seed, |id| {
        deployment.node_cached(id, NodeId(0), &digests)
    })
    .config(cfg)
    .build();
    let report = sim.run(spec.deadline);
    // Correctness check: completed nodes must hold the exact image.
    if report.all_complete {
        for i in 1..sim.topology().len() {
            assert_eq!(
                sim.node(NodeId(i as u32)).scheme().image().as_deref(),
                Some(&image[..]),
                "node {i} completed with a wrong image"
            );
        }
    }
    collect(&sim, report.all_complete, report.latency)
}

/// Runs Seluge once and collects the metrics.
pub fn run_seluge(spec: &RunSpec, params: SelugeParams, seed: u64) -> ExperimentMetrics {
    let image = test_image(params.image_len);
    let kp = Keypair::from_seed(b"bench keys");
    let chain = PuzzleKeyChain::generate(b"bench keys", params.version as u32 + 4);
    let artifacts = SelugeArtifacts::build(&image, params, &kp, &chain);
    let puzzle = Puzzle::new(chain.anchor(), params.puzzle_strength);
    let key = ClusterKey::derive(b"bench keys", 0);
    let cfg = SimConfig {
        medium: spec.medium,
        ..SimConfig::default()
    };
    let engine = spec.engine;
    let digests = lrs_seluge::scheme::PacketDigestCache::default();
    artifacts.warm_digest_cache(&digests);
    let mut sim = SimBuilder::new(spec.topology.clone(), seed, |id| {
        let scheme = if id == NodeId(0) {
            SelugeScheme::base(&artifacts, kp.public(), puzzle)
        } else {
            SelugeScheme::receiver(params, kp.public(), puzzle)
        };
        let scheme = scheme.with_digest_cache(digests.clone());
        DisseminationNode::new(scheme, UnionPolicy::new(), key.clone(), engine)
    })
    .config(cfg)
    .build();
    let report = sim.run(spec.deadline);
    if report.all_complete {
        for i in 1..sim.topology().len() {
            assert_eq!(
                sim.node(NodeId(i as u32)).scheme().image().as_deref(),
                Some(&image[..]),
                "node {i} completed with a wrong image"
            );
        }
    }
    collect(&sim, report.all_complete, report.latency)
}

/// Runs plain (insecure) Deluge once — the contrast case for the attack
/// experiments.
pub fn run_deluge(spec: &RunSpec, params: ImageParams, seed: u64) -> ExperimentMetrics {
    let image = test_image(params.image_len);
    let deluge_image = DelugeImage::new(image, params);
    let key = ClusterKey::derive(b"bench keys", 0);
    let engine = EngineConfig {
        authenticate_control: false,
        ..spec.engine
    };
    let cfg = SimConfig {
        medium: spec.medium,
        ..SimConfig::default()
    };
    let mut sim = SimBuilder::new(spec.topology.clone(), seed, |id| {
        let scheme = if id == NodeId(0) {
            DelugeScheme::base(&deluge_image)
        } else {
            DelugeScheme::receiver(params)
        };
        DisseminationNode::new(scheme, UnionPolicy::new(), key.clone(), engine)
    })
    .config(cfg)
    .build();
    let report = sim.run(spec.deadline);
    collect(&sim, report.all_complete, report.latency)
}

/// Runs `f` once per seed (`1..=seeds`) on the harness threads and
/// returns the per-seed metrics in seed order.
///
/// Each seed is an independent simulation with its own RNG streams, so
/// the result is bit-identical for any thread count — only wall-clock
/// time changes.
pub fn sample_seeds(
    seeds: u64,
    threads: usize,
    f: impl Fn(u64) -> ExperimentMetrics + Sync,
) -> Vec<ExperimentMetrics> {
    let jobs: Vec<u64> = (1..=seeds).collect();
    crate::harness::parallel_map(&jobs, threads, |&seed| f(seed))
}

/// Averages per-seed samples into one row of paper-style means.
///
/// Latency is averaged only over runs that completed (a stalled run has
/// `NaN` latency); `completed` separately reports the completion rate,
/// so nothing is hidden by the exclusion. With no completed run the
/// latency is `NaN`.
pub fn aggregate(samples: &[ExperimentMetrics]) -> ExperimentMetrics {
    let mut acc = ExperimentMetrics::default();
    let mut latency_runs = 0u64;
    let mut latency_sum = 0.0;
    for m in samples {
        if m.latency_s.is_finite() {
            latency_sum += m.latency_s;
            latency_runs += 1;
        }
        acc.add(&ExperimentMetrics {
            latency_s: 0.0,
            ..*m
        });
    }
    acc.scale(1.0 / samples.len() as f64);
    acc.latency_s = if latency_runs > 0 {
        latency_sum / latency_runs as f64
    } else {
        f64::NAN
    };
    acc
}

/// Averages a per-seed experiment over `seeds` runs, fanning the seeds
/// out over the configured harness threads
/// ([`configured_threads`](crate::harness::configured_threads)).
pub fn average(seeds: u64, f: impl Fn(u64) -> ExperimentMetrics + Sync) -> ExperimentMetrics {
    aggregate(&sample_seeds(
        seeds,
        crate::harness::configured_threads(),
        f,
    ))
}

/// Seluge parameters matched to an LR-Seluge configuration for a fair
/// comparison (§VI-A): same on-air data-packet payload
/// (`slice + hash = payload_len`), same packets per page (`k`), same
/// image and puzzle strength.
pub fn matched_seluge_params(lr: &LrSelugeParams) -> SelugeParams {
    SelugeParams {
        version: lr.version,
        image_len: lr.image_len,
        packets_per_page: lr.k,
        slice_len: lr.payload_len - lrs_crypto::hash::HASH_IMAGE_LEN,
        hash_page_chunks: lr.k0.next_power_of_two(),
        puzzle_strength: lr.puzzle_strength,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_lr() -> LrSelugeParams {
        LrSelugeParams {
            image_len: 1024,
            k: 8,
            n: 12,
            payload_len: 56,
            k0: 4,
            n0: 8,
            puzzle_strength: 4,
            ..LrSelugeParams::default()
        }
    }

    #[test]
    fn lr_and_seluge_runs_complete_and_count() {
        let spec = RunSpec::one_hop(3, 0.1);
        let lr = run_lr(&spec, tiny_lr(), 1);
        assert_eq!(lr.completed, 1.0);
        assert!(lr.page_data_pkts > 0.0);
        assert!(lr.total_bytes > 0.0);
        assert!(lr.latency_s.is_finite());
        assert_eq!(lr.sig_verifications, 3.0);
        assert_eq!(lr.completion_frac, 1.0);
        assert!(lr.verify_inflation > 0.0);
        assert!(lr.energy_j > 0.0);

        let s = run_seluge(&spec, matched_seluge_params(&tiny_lr()), 1);
        assert_eq!(s.completed, 1.0);
        assert!(s.snack_pkts > 0.0);
    }

    #[test]
    fn deluge_run_completes() {
        let spec = RunSpec::one_hop(3, 0.05);
        let params = ImageParams {
            version: 1,
            image_len: 1024,
            packets_per_page: 8,
            payload_len: 48,
        };
        let d = run_deluge(&spec, params, 2);
        assert_eq!(d.completed, 1.0);
    }

    #[test]
    fn average_is_stable() {
        let spec = RunSpec::one_hop(2, 0.2);
        let m = average(3, |seed| run_lr(&spec, tiny_lr(), seed));
        assert_eq!(m.completed, 1.0);
        assert!(m.page_data_pkts > 0.0);
    }

    #[test]
    fn named_fields_cover_the_struct() {
        let m = ExperimentMetrics {
            snack_pkts: 7.0,
            ..Default::default()
        };
        assert_eq!(m.named().len(), ExperimentMetrics::NAMES.len());
        for (name, value) in m.named() {
            assert_eq!(m.get(name), value);
        }
        assert_eq!(m.get("snack_pkts"), 7.0);
    }

    #[test]
    fn aggregate_excludes_stalled_latency_but_counts_completion() {
        let done = ExperimentMetrics {
            latency_s: 10.0,
            completed: 1.0,
            data_pkts: 100.0,
            ..ExperimentMetrics::default()
        };
        let stalled = ExperimentMetrics {
            latency_s: f64::NAN,
            completed: 0.0,
            data_pkts: 300.0,
            ..ExperimentMetrics::default()
        };
        let m = aggregate(&[done, stalled]);
        assert_eq!(m.latency_s, 10.0);
        assert_eq!(m.completed, 0.5);
        assert_eq!(m.data_pkts, 200.0);
        assert!(aggregate(&[stalled]).latency_s.is_nan());
    }

    #[test]
    fn sample_seeds_is_thread_count_invariant() {
        let spec = RunSpec::one_hop(2, 0.2);
        let one = sample_seeds(3, 1, |seed| run_lr(&spec, tiny_lr(), seed));
        let many = sample_seeds(3, 4, |seed| run_lr(&spec, tiny_lr(), seed));
        assert_eq!(one, many);
        assert_eq!(one.len(), 3);
    }

    #[test]
    fn matched_params_align_packet_sizes() {
        let lr = tiny_lr();
        let s = matched_seluge_params(&lr);
        assert_eq!(s.data_payload_len(), lr.payload_len);
        assert_eq!(s.packets_per_page, lr.k);
        assert_eq!(s.image_len, lr.image_len);
    }
}

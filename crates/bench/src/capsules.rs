//! Scenario registry mapping replay-capsule tags back to protocol
//! constructors.
//!
//! A [`Capsule`] deliberately serializes no protocol state: seed +
//! config + topology + fault schedule regenerate every bit of it on
//! replay. What the capture format *cannot* regenerate is which
//! protocol population produced the run — that travels as free-form
//! scenario tags. This module is the bench-side registry for those
//! tags: the chaos/scale capture paths write them through
//! [`ScenarioTags::apply`], and the `replay` binary turns them back
//! into `make_node` closures via [`replay_capsule`],
//! [`bisect_capsule_shards`], and [`bisect_capsule_engines`].

use crate::runner::{matched_seluge_params, test_image};
use lr_seluge::{Deployment, LrArtifacts, LrNode, LrSelugeParams};
use lrs_crypto::cluster::ClusterKey;
use lrs_crypto::puzzle::{Puzzle, PuzzleKeyChain};
use lrs_crypto::schnorr::Keypair;
use lrs_deluge::attack::{AttackKind, Attacker, AttackerProfile, MaybeAdversary};
use lrs_deluge::engine::{DisseminationNode, EngineConfig};
use lrs_deluge::policy::UnionPolicy;
use lrs_netsim::attack::AttackPlan;
use lrs_netsim::capsule::{SEQUENTIAL_ENGINE, SHARDED_ENGINE};
use lrs_netsim::medium::MediumConfig;
use lrs_netsim::node::NodeId;
use lrs_netsim::sim::SimConfig;
use lrs_netsim::time::Duration;
use lrs_netsim::{
    bisect_engines, bisect_shard_counts, replay_sequential, replay_sharded, Capsule, CapsuleSpec,
    Divergence, ReplayRun,
};
use lrs_seluge::{SelugeArtifacts, SelugeScheme};

/// Tag key: scheme under test (`lr-seluge` or `seluge`).
pub const TAG_SCHEME: &str = "scheme";
/// Tag key: parameter profile (`chaos`, `scale`, or `campaign`),
/// selecting both the parameter set and the test-image generator of the
/// capture path.
pub const TAG_PROFILE: &str = "profile";
/// Tag key: image length in bytes.
pub const TAG_IMAGE_LEN: &str = "image_len";
/// Tag key: key-derivation context (the `Deployment::new` seed
/// material, as a UTF-8 string).
pub const TAG_KEY_CONTEXT: &str = "key_context";
/// Tag key: node id of the packet-storm attacker, when one ran.
pub const TAG_ATTACKER: &str = "attacker";
/// Tag key: the serialized [`AttackPlan`] (entry JSONs joined by `;`)
/// that placed plan-driven adversaries, when one ran. Replay rebuilds
/// the exact attacker population from this tag alone — the plan, like
/// the fault schedule, is data, not code.
pub const TAG_ATTACK_PLAN: &str = "attack_plan";

/// The chaos sweep's LR-Seluge parameter set.
pub fn chaos_params(image_len: usize) -> LrSelugeParams {
    LrSelugeParams {
        image_len,
        k: 8,
        n: 12,
        payload_len: 56,
        k0: 4,
        n0: 8,
        puzzle_strength: 4,
        ..LrSelugeParams::default()
    }
}

/// The scale sweep's LR-Seluge parameter set.
pub fn scale_params(image_len: usize) -> LrSelugeParams {
    LrSelugeParams {
        image_len,
        k: 8,
        n: 16,
        payload_len: 56,
        k0: 4,
        n0: 8,
        puzzle_strength: 6,
        ..LrSelugeParams::default()
    }
}

/// The campaign engine's LR-Seluge parameter set: the chaos code rate
/// with a cheaper puzzle, sized for fleets of thousands of runs.
pub fn campaign_params(image_len: usize) -> LrSelugeParams {
    LrSelugeParams {
        image_len,
        k: 8,
        n: 12,
        payload_len: 56,
        k0: 4,
        n0: 8,
        puzzle_strength: 2,
        ..LrSelugeParams::default()
    }
}

/// The scale sweep's historical test image (distinct from
/// [`test_image`]; both generators are pinned here because a capsule
/// must reproduce whichever image its capture path used).
pub fn scale_image(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 % 251) as u8).collect()
}

/// The attack bin's LR-Seluge parameter set: defaults with a strong
/// (2⁻¹⁰) puzzle, so forged-signature floods are visibly absorbed.
pub fn attack_params(image_len: usize) -> LrSelugeParams {
    LrSelugeParams {
        image_len,
        puzzle_strength: 10,
        ..LrSelugeParams::default()
    }
}

fn profile_params(profile: &str, image_len: usize) -> Result<LrSelugeParams, String> {
    match profile {
        "chaos" => Ok(chaos_params(image_len)),
        "scale" => Ok(scale_params(image_len)),
        "campaign" => Ok(campaign_params(image_len)),
        "attack" => Ok(attack_params(image_len)),
        other => Err(format!(
            "unknown parameter profile {other:?}; this registry knows \"chaos\", \"scale\", \
             \"campaign\", and \"attack\""
        )),
    }
}

fn profile_image(profile: &str, len: usize) -> Result<Vec<u8>, String> {
    match profile {
        "chaos" | "campaign" | "attack" => Ok(test_image(len)),
        "scale" => Ok(scale_image(len)),
        other => Err(format!(
            "unknown parameter profile {other:?}; this registry knows \"chaos\", \"scale\", \
             \"campaign\", and \"attack\""
        )),
    }
}

/// The chaos sweep's simulator configuration (5% application-layer
/// loss, 3000 s ceiling, 400 s stall watchdog).
pub fn chaos_sim_config() -> SimConfig {
    SimConfig {
        medium: MediumConfig {
            app_loss: 0.05,
            ..MediumConfig::default()
        },
        max_sim_time: Some(Duration::from_secs(3_000)),
        stall_window: Some(Duration::from_secs(400)),
        ..SimConfig::default()
    }
}

/// The chaos sweep's bursty bogus-data packet-storm attacker.
pub fn storm_attacker(payload_len: usize, index_space: u16, version: u16) -> Attacker {
    Attacker::outsider(
        AttackKind::BogusData {
            payload_len,
            index_space,
        },
        Duration::from_millis(80),
        version,
    )
    .with_burst(Duration::from_secs(5), Duration::from_secs(15))
}

/// The decoded (or to-be-written) scenario tags of a capsule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioTags {
    /// `lr-seluge` or `seluge`.
    pub scheme: String,
    /// Parameter profile: `chaos`, `scale`, or `campaign`.
    pub profile: String,
    /// Image length in bytes.
    pub image_len: usize,
    /// Key-derivation context string.
    pub key_context: String,
    /// Packet-storm attacker node, if one ran.
    pub attacker: Option<NodeId>,
    /// Plan-driven adversary schedule, if one ran.
    pub attack_plan: Option<AttackPlan>,
}

impl ScenarioTags {
    /// Tags for a run of `scheme` under `profile` parameters.
    pub fn new(scheme: &str, profile: &str, image_len: usize, key_context: &str) -> Self {
        ScenarioTags {
            scheme: scheme.to_string(),
            profile: profile.to_string(),
            image_len,
            key_context: key_context.to_string(),
            attacker: None,
            attack_plan: None,
        }
    }

    /// Marks `id` as the packet-storm attacker.
    pub fn with_attacker(mut self, id: NodeId) -> Self {
        self.attacker = Some(id);
        self
    }

    /// Attaches a plan-driven adversary schedule. Plan entries take
    /// precedence over the storm attacker at overlapping node ids.
    pub fn with_attack_plan(mut self, plan: AttackPlan) -> Self {
        self.attack_plan = Some(plan);
        self
    }

    /// Writes these tags onto a [`CapsuleSpec`].
    pub fn apply(&self, spec: CapsuleSpec) -> CapsuleSpec {
        let mut spec = spec
            .tag(TAG_SCHEME, &self.scheme)
            .tag(TAG_PROFILE, &self.profile)
            .tag(TAG_IMAGE_LEN, self.image_len)
            .tag(TAG_KEY_CONTEXT, &self.key_context);
        if let Some(id) = self.attacker {
            spec = spec.tag(TAG_ATTACKER, id.0);
        }
        if let Some(plan) = &self.attack_plan {
            spec = spec.tag(TAG_ATTACK_PLAN, plan.to_tag());
        }
        spec
    }

    /// The raw key/value pairs, for direct [`Capsule`] construction.
    pub fn pairs(&self) -> Vec<(String, String)> {
        self.apply(CapsuleSpec::new("unused")).scenario
    }

    /// Decodes the tags of a loaded capsule.
    pub fn decode(capsule: &Capsule) -> Result<Self, String> {
        let scheme = capsule
            .scenario_value(TAG_SCHEME)
            .ok_or("capsule has no \"scheme\" scenario tag; it was not written by this harness")?
            .to_string();
        let image_len = capsule
            .scenario_value(TAG_IMAGE_LEN)
            .ok_or("capsule has no \"image_len\" scenario tag")?
            .parse::<usize>()
            .map_err(|e| format!("bad image_len tag: {e}"))?;
        let profile = capsule
            .scenario_value(TAG_PROFILE)
            .unwrap_or("chaos")
            .to_string();
        let key_context = capsule
            .scenario_value(TAG_KEY_CONTEXT)
            .unwrap_or("chaos keys")
            .to_string();
        let attacker = match capsule.scenario_value(TAG_ATTACKER) {
            Some(v) => Some(NodeId(
                v.parse::<u32>()
                    .map_err(|e| format!("bad attacker tag: {e}"))?,
            )),
            None => None,
        };
        let attack_plan = match capsule.scenario_value(TAG_ATTACK_PLAN) {
            Some(v) => {
                Some(AttackPlan::from_tag(v).ok_or_else(|| format!("bad attack_plan tag {v:?}"))?)
            }
            None => None,
        };
        Ok(ScenarioTags {
            scheme,
            profile,
            image_len,
            key_context,
            attacker,
            attack_plan,
        })
    }
}

/// The [`AttackerProfile`] matching an LR-Seluge parameter set. Pass
/// the deployment's cluster key to let insider vectors use it.
pub fn lr_attacker_profile(p: &LrSelugeParams, cluster_key: Option<ClusterKey>) -> AttackerProfile {
    AttackerProfile {
        payload_len: p.payload_len,
        index_space: p.n,
        sig_body_len: LrArtifacts::signature_body_len(),
        n_bits: p.n as usize,
        version: p.version,
        cluster_key,
    }
}

/// The [`AttackerProfile`] matching a Seluge parameter set.
pub fn seluge_attacker_profile(
    sp: &lrs_seluge::SelugeParams,
    cluster_key: Option<ClusterKey>,
) -> AttackerProfile {
    AttackerProfile {
        payload_len: sp.data_payload_len(),
        index_space: sp.packets_per_page,
        sig_body_len: SelugeArtifacts::signature_body_len(),
        n_bits: sp.packets_per_page as usize,
        version: sp.version,
        cluster_key,
    }
}

/// Reconstructs the LR-Seluge node population described by `tags`.
pub fn lr_factory(
    tags: &ScenarioTags,
) -> Result<impl Fn(NodeId) -> MaybeAdversary<LrNode> + Sync, String> {
    let p = profile_params(&tags.profile, tags.image_len)?;
    let image = profile_image(&tags.profile, tags.image_len)?;
    let deployment = Deployment::new(&image, p, tags.key_context.as_bytes());
    let profile = lr_attacker_profile(&p, Some(deployment.cluster_key().clone()));
    let attacker = tags.attacker;
    let plan = tags.attack_plan.clone();
    Ok(move |id: NodeId| {
        if let Some(entry) = plan.as_ref().and_then(|pl| pl.entry_for(id)) {
            MaybeAdversary::Attacker(Attacker::from_plan_entry(entry, &profile))
        } else if Some(id) == attacker {
            MaybeAdversary::Attacker(storm_attacker(p.payload_len, p.n, p.version))
        } else {
            MaybeAdversary::Honest(deployment.node(id, NodeId(0)))
        }
    })
}

/// Reconstructs the Seluge node population described by `tags`.
#[allow(clippy::type_complexity)]
pub fn seluge_factory(
    tags: &ScenarioTags,
) -> Result<
    impl Fn(NodeId) -> MaybeAdversary<DisseminationNode<SelugeScheme, UnionPolicy>> + Sync,
    String,
> {
    let sp = matched_seluge_params(&profile_params(&tags.profile, tags.image_len)?);
    let image = profile_image(&tags.profile, tags.image_len)?;
    let context = tags.key_context.as_bytes();
    let kp = Keypair::from_seed(context);
    let chain = PuzzleKeyChain::generate(context, sp.version as u32 + 4);
    let artifacts = SelugeArtifacts::build(&image, sp, &kp, &chain);
    let puzzle = Puzzle::new(chain.anchor(), sp.puzzle_strength);
    let key = ClusterKey::derive(context, 0);
    let pubkey = kp.public();
    let profile = seluge_attacker_profile(&sp, Some(key.clone()));
    let attacker = tags.attacker;
    let plan = tags.attack_plan.clone();
    Ok(move |id: NodeId| {
        if let Some(entry) = plan.as_ref().and_then(|pl| pl.entry_for(id)) {
            MaybeAdversary::Attacker(Attacker::from_plan_entry(entry, &profile))
        } else if Some(id) == attacker {
            MaybeAdversary::Attacker(storm_attacker(
                sp.data_payload_len(),
                sp.packets_per_page,
                sp.version,
            ))
        } else {
            let scheme = if id == NodeId(0) {
                SelugeScheme::base(&artifacts, pubkey, puzzle)
            } else {
                SelugeScheme::receiver(sp, pubkey, puzzle)
            };
            MaybeAdversary::Honest(DisseminationNode::new(
                scheme,
                UnionPolicy::new(),
                key.clone(),
                EngineConfig::default(),
            ))
        }
    })
}

fn unknown_scheme(scheme: &str) -> String {
    format!(
        "unknown scheme tag {scheme:?}; this registry can reconstruct \
         \"lr-seluge\" and \"seluge\" populations"
    )
}

/// Reconstructs `capsule`'s node population from its scenario tags and
/// re-executes it: `engine` is [`SEQUENTIAL_ENGINE`] or
/// [`SHARDED_ENGINE`]; `shards` only applies to the latter.
pub fn replay_capsule(capsule: &Capsule, engine: &str, shards: usize) -> Result<ReplayRun, String> {
    let tags = ScenarioTags::decode(capsule)?;
    match tags.scheme.as_str() {
        "lr-seluge" => {
            let make = lr_factory(&tags)?;
            run_engine(capsule, engine, shards, make)
        }
        "seluge" => {
            let make = seluge_factory(&tags)?;
            run_engine(capsule, engine, shards, make)
        }
        other => Err(unknown_scheme(other)),
    }
}

fn run_engine<P, F>(
    capsule: &Capsule,
    engine: &str,
    shards: usize,
    make: F,
) -> Result<ReplayRun, String>
where
    P: lrs_netsim::node::Protocol + 'static,
    F: Fn(NodeId) -> P + Sync,
{
    match engine {
        SEQUENTIAL_ENGINE => Ok(replay_sequential(capsule, make)),
        SHARDED_ENGINE => Ok(replay_sharded(capsule, shards, make)),
        other => Err(format!(
            "unknown engine {other:?}; use {SEQUENTIAL_ENGINE:?} or {SHARDED_ENGINE:?}"
        )),
    }
}

/// Replays `capsule` at two shard counts and reports the first
/// diverging `OrderKey` (`None` means lockstep-identical, the invariant
/// the sharded engine promises).
pub fn bisect_capsule_shards(
    capsule: &Capsule,
    shards_a: usize,
    shards_b: usize,
) -> Result<Option<Divergence>, String> {
    let tags = ScenarioTags::decode(capsule)?;
    match tags.scheme.as_str() {
        "lr-seluge" => Ok(bisect_shard_counts(
            capsule,
            shards_a,
            shards_b,
            lr_factory(&tags)?,
        )),
        "seluge" => Ok(bisect_shard_counts(
            capsule,
            shards_a,
            shards_b,
            seluge_factory(&tags)?,
        )),
        other => Err(unknown_scheme(other)),
    }
}

/// Replays `capsule` on both engines and reports where their event
/// orders part ways (expected: the engines order concurrent events
/// differently by design).
pub fn bisect_capsule_engines(capsule: &Capsule) -> Result<Option<Divergence>, String> {
    let tags = ScenarioTags::decode(capsule)?;
    match tags.scheme.as_str() {
        "lr-seluge" => Ok(bisect_engines(capsule, lr_factory(&tags)?)),
        "seluge" => Ok(bisect_engines(capsule, seluge_factory(&tags)?)),
        other => Err(unknown_scheme(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_round_trip_through_a_spec() {
        use lrs_netsim::attack::{AttackConfig, AttackVector};
        let plan = AttackPlan::generate(
            &AttackConfig {
                vector: AttackVector::SpoofedDenialOfReceipt,
                attackers: 2,
                burst: Some((Duration::from_secs(2), Duration::from_secs(5))),
                ..AttackConfig::default()
            },
            &lrs_netsim::Topology::star(8),
            7,
        );
        let tags = ScenarioTags::new("lr-seluge", "chaos", 2048, "chaos keys")
            .with_attacker(NodeId(9))
            .with_attack_plan(plan);
        let pairs = tags.pairs();
        let capsule = Capsule {
            seed: 1,
            engine: SHARDED_ENGINE.to_string(),
            shards: 2,
            deadline: Duration::from_secs(1),
            config: SimConfig::default(),
            topology: lrs_netsim::Topology::star(2),
            faults: lrs_netsim::FaultPlan::new(),
            scenario: pairs,
            digests: Vec::new(),
        };
        assert_eq!(ScenarioTags::decode(&capsule).unwrap(), tags);
    }

    #[test]
    fn unknown_profile_is_rejected() {
        assert!(profile_params("nope", 1024).is_err());
        assert!(profile_image("nope", 1024).is_err());
    }
}

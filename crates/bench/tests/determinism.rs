//! Determinism regression tests.
//!
//! The whole experiment pipeline rests on two properties:
//!
//! 1. A given seed produces bit-identical [`ExperimentMetrics`] every
//!    time — same machine, same run order, or not.
//! 2. The parallel harness does not change results: fanning seeds out
//!    over N workers yields exactly what a sequential loop yields.
//! 3. Attaching a trace sink is observational only — it never perturbs
//!    the simulation it watches.

use lr_seluge::{Deployment, LrSelugeParams};
use lrs_bench::runner::test_image;
use lrs_bench::{
    matched_seluge_params, run_deluge, run_lr, run_seluge, sample_grid, sample_seeds, RunSpec,
};
use lrs_deluge::image::ImageParams;
use lrs_netsim::medium::MediumConfig;
use lrs_netsim::node::{NodeId, PacketKind};
use lrs_netsim::sim::SimConfig;

use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;
use lrs_netsim::trace::{JsonlTrace, RingTrace};
use lrs_netsim::SimBuilder;

fn tiny_lr() -> LrSelugeParams {
    LrSelugeParams {
        image_len: 1024,
        k: 8,
        n: 12,
        payload_len: 56,
        k0: 4,
        n0: 8,
        puzzle_strength: 4,
        ..LrSelugeParams::default()
    }
}

#[test]
fn lr_runs_are_bit_identical_across_repeats() {
    let spec = RunSpec::one_hop(3, 0.15);
    let a = run_lr(&spec, tiny_lr(), 7);
    let b = run_lr(&spec, tiny_lr(), 7);
    assert_eq!(a, b);
    // And a different seed actually changes something.
    let c = run_lr(&spec, tiny_lr(), 8);
    assert_ne!(a, c);
}

#[test]
fn seluge_runs_are_bit_identical_across_repeats() {
    let spec = RunSpec::one_hop(3, 0.15);
    let params = matched_seluge_params(&tiny_lr());
    let a = run_seluge(&spec, params, 5);
    let b = run_seluge(&spec, params, 5);
    assert_eq!(a, b);
}

#[test]
fn deluge_runs_are_bit_identical_across_repeats() {
    let spec = RunSpec::one_hop(3, 0.05);
    let params = ImageParams {
        version: 1,
        image_len: 1024,
        packets_per_page: 8,
        payload_len: 48,
    };
    let a = run_deluge(&spec, params, 3);
    let b = run_deluge(&spec, params, 3);
    assert_eq!(a, b);
}

#[test]
fn thread_count_does_not_change_per_seed_metrics() {
    let spec = RunSpec::one_hop(3, 0.2);
    let sequential = sample_seeds(4, 1, |seed| run_lr(&spec, tiny_lr(), seed));
    for threads in [2, 4, 8] {
        let parallel = sample_seeds(4, threads, |seed| run_lr(&spec, tiny_lr(), seed));
        assert_eq!(sequential, parallel, "{threads} threads diverged");
    }
}

#[test]
fn grid_fanout_matches_sequential_sweep() {
    let points = [0.0f64, 0.2, 0.4];
    let par = sample_grid(&points, 2, 8, |&p, seed| {
        run_lr(&RunSpec::one_hop(2, p), tiny_lr(), seed)
    });
    let seq: Vec<Vec<_>> = points
        .iter()
        .map(|&p| {
            (1..=2)
                .map(|seed| run_lr(&RunSpec::one_hop(2, p), tiny_lr(), seed))
                .collect()
        })
        .collect();
    assert_eq!(par, seq);
}

/// Runs one tiny LR-Seluge sim, optionally traced, and returns the
/// counters a trace could plausibly perturb.
fn traced_run(
    trace: Option<Box<dyn lrs_netsim::trace::TraceSink>>,
) -> (u64, u64, u64, u64, bool, Option<lrs_netsim::time::SimTime>) {
    let params = tiny_lr();
    let image = test_image(params.image_len);
    let deployment = Deployment::new(&image, params, b"trace test");
    let cfg = SimConfig {
        medium: MediumConfig {
            app_loss: 0.2,
            ..MediumConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = SimBuilder::new(Topology::star(4), 11, |id| deployment.node(id, NodeId(0)))
        .config(cfg)
        .build();
    if let Some(sink) = trace {
        sim.set_trace(sink);
    }
    let report = sim.run(Duration::from_secs(100_000));
    let m = sim.metrics();
    (
        m.total_tx_packets(),
        m.total_tx_bytes(),
        m.rx_packets(),
        m.tx_packets(PacketKind::Snack),
        report.all_complete,
        report.latency,
    )
}

#[test]
fn attaching_a_trace_does_not_change_metrics() {
    let bare = traced_run(None);
    let ringed = traced_run(Some(Box::new(RingTrace::new(512))));
    let jsonl = traced_run(Some(Box::new(JsonlTrace::new(Vec::new()))));
    assert_eq!(bare, ringed);
    assert_eq!(bare, jsonl);
}

/// A sink that shares its event log with the test.
struct SharedSink(std::sync::Arc<std::sync::Mutex<Vec<lrs_netsim::trace::TraceEvent>>>);

impl lrs_netsim::trace::TraceSink for SharedSink {
    fn record(&mut self, event: &lrs_netsim::trace::TraceEvent) {
        self.0.lock().unwrap().push(event.clone());
    }
}

#[test]
fn trace_sink_sees_every_event_family() {
    use lrs_netsim::trace::TraceEvent;

    let params = tiny_lr();
    let image = test_image(params.image_len);
    let deployment = Deployment::new(&image, params, b"trace test");
    let cfg = SimConfig {
        medium: MediumConfig {
            app_loss: 0.3,
            ..MediumConfig::default()
        },
        ..SimConfig::default()
    };
    let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut sim = SimBuilder::new(Topology::star(4), 1, |id| deployment.node(id, NodeId(0)))
        .config(cfg)
        .build();
    sim.set_trace(Box::new(SharedSink(events.clone())));
    let report = sim.run(Duration::from_secs(100_000));
    assert!(report.all_complete);
    drop(sim);

    let events = events.lock().unwrap();
    assert!(!events.is_empty());
    let has = |f: &dyn Fn(&TraceEvent) -> bool| events.iter().any(f);
    assert!(has(&|e| matches!(e, TraceEvent::Tx { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::Rx { .. })));
    assert!(
        has(&|e| matches!(e, TraceEvent::Loss { .. })),
        "p = 0.3 must lose something"
    );
    assert!(has(&|e| matches!(e, TraceEvent::TimerFired { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::NodeComplete { .. })));
    assert!(has(&|e| matches!(
        e,
        TraceEvent::Note { label: "snack", .. }
    )));
    assert!(has(&|e| matches!(
        e,
        TraceEvent::Note {
            label: "page_complete",
            ..
        }
    )));
    assert!(has(&|e| matches!(
        e,
        TraceEvent::Note {
            label: "sched_tx",
            ..
        }
    )));
    // Every delivery outcome correlates back to a recorded transmission.
    // (The stream is emission-ordered, not timestamp-ordered: a Tx event
    // is stamped with its post-CSMA on-air start, which lies ahead of
    // events emitted at the scheduling instant.)
    let tx_ids: std::collections::HashSet<u64> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Tx { tx_id, .. } => Some(*tx_id),
            _ => None,
        })
        .collect();
    for e in events.iter() {
        if let TraceEvent::Rx { tx_id, .. } | TraceEvent::Loss { tx_id, .. } = e {
            assert!(tx_ids.contains(tx_id), "orphan delivery {e:?}");
        }
    }
}

//! Campaign-engine integration tests: crash-resume bit-identity,
//! completion-log dedup, thread-count invariance, and job-capsule
//! export — the guarantees that make a checkpointed Monte-Carlo fleet
//! trustworthy.

use lrs_bench::campaign::{Campaign, JOB_LOG, REPORT};
use lrs_bench::capsules::replay_capsule;
use lrs_bench::CampaignSpec;
use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

/// A deliberately small grid that still spans both schemes and several
/// cells, so the reorder buffer and per-cell aggregation actually work.
const SPEC: &str = r#"
name = "test-grid"
schemes = ["lr-seluge", "seluge"]
topologies = ["star:4"]
loss_ppm = [100_000, 250_000]
seeds = 2
image_bytes = 512
deadline_s = 3000
"#;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lrs-campaign-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn spec() -> CampaignSpec {
    CampaignSpec::parse(SPEC).expect("test spec parses")
}

fn run_full(name: &str, threads: usize) -> (PathBuf, Vec<u8>) {
    let dir = scratch(name);
    let campaign = Campaign::create(spec(), &dir).expect("create");
    let report = campaign.run(threads, None).expect("run").expect("complete");
    assert_eq!(report.jobs, campaign.total_jobs());
    let bytes = fs::read(dir.join(REPORT)).expect("report written");
    (dir, bytes)
}

#[test]
fn crash_resume_is_bit_identical_and_never_reruns_jobs() {
    let (_full_dir, full_report) = run_full("full", 1);

    // Same spec, killed after 3 jobs: no report yet, 3 jobs logged.
    let dir = scratch("killed");
    let campaign = Campaign::create(spec(), &dir).expect("create");
    let total = campaign.total_jobs();
    assert!(campaign.run(1, Some(3)).expect("run").is_none());
    assert!(!dir.join(REPORT).exists());
    assert_eq!(campaign.completed().expect("log parses").len(), 3);

    // Resume from the manifest alone (fresh handle, no spec file).
    let resumed = Campaign::resume(&dir).expect("resume");
    let report = resumed.run(1, None).expect("run").expect("completes");
    assert_eq!(report.jobs, total);

    // The final report is byte-identical to the uninterrupted run's.
    assert_eq!(
        fs::read(dir.join(REPORT)).expect("report"),
        full_report,
        "kill+resume changed the report bytes"
    );

    // Completion-log dedup: every job id appears exactly once — the
    // resumed run skipped all logged jobs instead of re-executing them.
    let log = fs::read_to_string(dir.join(JOB_LOG)).expect("log");
    let ids: Vec<usize> = log
        .lines()
        .map(|line| {
            lrs_bench::parse_json(line)
                .ok()
                .and_then(|v| v.get("job").and_then(|j| j.as_num()))
                .expect("log line parses") as usize
        })
        .collect();
    assert_eq!(ids.len(), total, "log should hold each job exactly once");
    assert_eq!(
        ids.iter().copied().collect::<BTreeSet<_>>().len(),
        total,
        "a job was executed (and logged) twice"
    );
}

#[test]
fn reports_are_identical_across_thread_counts() {
    let (_d1, r1) = run_full("threads1", 1);
    let (_d2, r2) = run_full("threads2", 2);
    let (_d8, r8) = run_full("threads8", 8);
    assert_eq!(r1, r2, "threads=2 changed the report bytes");
    assert_eq!(r1, r8, "threads=8 changed the report bytes");
}

#[test]
fn a_torn_log_tail_is_discarded_and_the_job_reruns() {
    let (_full_dir, full_report) = run_full("torn-ref", 1);

    let dir = scratch("torn");
    let campaign = Campaign::create(spec(), &dir).expect("create");
    assert!(campaign.run(1, Some(4)).expect("run").is_none());
    // Simulate kill -9 mid-append: chop the last line in half.
    let log_path = dir.join(JOB_LOG);
    let log = fs::read_to_string(&log_path).expect("log");
    let torn = &log[..log.len() - 30];
    fs::write(&log_path, torn).expect("truncate");

    let resumed = Campaign::resume(&dir).expect("resume");
    // The torn record no longer counts as completed.
    assert_eq!(resumed.completed().expect("tolerates torn tail").len(), 3);
    // Append one job onto the torn log: the tail must be truncated
    // first, not glued onto — gluing would leave a corrupt *mid-file*
    // line that poisons every later read of the log.
    assert!(resumed.run(1, Some(1)).expect("run").is_none());
    let second = Campaign::resume(&dir).expect("second resume");
    assert_eq!(
        second
            .completed()
            .expect("log stays parseable after append")
            .len(),
        4
    );
    // ...and the rerun restores a byte-identical report.
    second.run(1, None).expect("run").expect("completes");
    assert_eq!(fs::read(dir.join(REPORT)).expect("report"), full_report);
}

#[test]
fn export_from_a_spec_touches_nothing_on_disk() {
    let dir = scratch("offline");
    let campaign = Campaign::offline(spec(), &dir);
    let capsule = campaign.job_capsule(0).expect("export");
    assert_eq!(capsule.seed, campaign.job_seed(0));
    assert!(
        !dir.exists(),
        "offline export created {} as a side effect",
        dir.display()
    );
}

#[test]
fn every_job_exports_as_a_replayable_capsule() {
    let dir = scratch("export");
    let campaign = Campaign::create(spec(), &dir).expect("create");
    let report = campaign.run(1, None).expect("run").expect("completes");
    let records = campaign.completed().expect("log");

    // Export the first job of each scheme and re-execute it from the
    // capsule alone: the outcome must match what the campaign logged.
    for &job in &[0usize, campaign.total_jobs() - 1] {
        let capsule = campaign.job_capsule(job).expect("export");
        let run = replay_capsule(&capsule, &capsule.engine, capsule.shards).expect("replay");
        let logged = records.iter().find(|r| r.job == job).expect("job logged");
        assert_eq!(
            run.report.outcome.label(),
            logged.outcome,
            "job {job} replayed to a different outcome"
        );
    }
    let _ = report;
}

#[test]
fn create_refuses_an_existing_campaign_dir() {
    let dir = scratch("refuse");
    Campaign::create(spec(), &dir).expect("create");
    let err = match Campaign::create(spec(), &dir) {
        Ok(_) => panic!("second create on the same dir should fail"),
        Err(e) => e,
    };
    assert!(err.contains("resume"), "unhelpful error: {err}");
}

//! Campaign-engine integration tests: crash-resume bit-identity,
//! completion-log dedup, thread-count invariance, and job-capsule
//! export — the guarantees that make a checkpointed Monte-Carlo fleet
//! trustworthy.

use lrs_bench::campaign::{Campaign, JOB_LOG, REPORT};
use lrs_bench::capsules::replay_capsule;
use lrs_bench::spec::{attack_config, canonical_attack_token, canonical_fault_token, fault_config};
use lrs_bench::{CampaignSpec, ExperimentMetrics};
use lrs_netsim::capsule::{Capsule, SEQUENTIAL_ENGINE, SHARDED_ENGINE};
use lrs_netsim::fault::{FaultEvent, FaultPlan};
use lrs_netsim::node::NodeId;
use lrs_netsim::shrink::shrink_fault_plan;
use lrs_netsim::sim::Outcome;
use lrs_netsim::time::{Duration, SimTime};
use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

/// A deliberately small grid that still spans both schemes and several
/// cells, so the reorder buffer and per-cell aggregation actually work.
const SPEC: &str = r#"
name = "test-grid"
schemes = ["lr-seluge", "seluge"]
topologies = ["star:4"]
loss_ppm = [100_000, 250_000]
seeds = 2
image_bytes = 512
deadline_s = 3000
"#;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lrs-campaign-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn spec() -> CampaignSpec {
    CampaignSpec::parse(SPEC).expect("test spec parses")
}

fn run_full(name: &str, threads: usize) -> (PathBuf, Vec<u8>) {
    let dir = scratch(name);
    let campaign = Campaign::create(spec(), &dir).expect("create");
    let report = campaign.run(threads, None).expect("run").expect("complete");
    assert_eq!(report.jobs, campaign.total_jobs());
    let bytes = fs::read(dir.join(REPORT)).expect("report written");
    (dir, bytes)
}

#[test]
fn crash_resume_is_bit_identical_and_never_reruns_jobs() {
    let (_full_dir, full_report) = run_full("full", 1);

    // Same spec, killed after 3 jobs: no report yet, 3 jobs logged.
    let dir = scratch("killed");
    let campaign = Campaign::create(spec(), &dir).expect("create");
    let total = campaign.total_jobs();
    assert!(campaign.run(1, Some(3)).expect("run").is_none());
    assert!(!dir.join(REPORT).exists());
    assert_eq!(campaign.completed().expect("log parses").len(), 3);

    // Resume from the manifest alone (fresh handle, no spec file).
    let resumed = Campaign::resume(&dir).expect("resume");
    let report = resumed.run(1, None).expect("run").expect("completes");
    assert_eq!(report.jobs, total);

    // The final report is byte-identical to the uninterrupted run's.
    assert_eq!(
        fs::read(dir.join(REPORT)).expect("report"),
        full_report,
        "kill+resume changed the report bytes"
    );

    // Completion-log dedup: every job id appears exactly once — the
    // resumed run skipped all logged jobs instead of re-executing them.
    let log = fs::read_to_string(dir.join(JOB_LOG)).expect("log");
    let ids: Vec<usize> = log
        .lines()
        .map(|line| {
            lrs_bench::parse_json(line)
                .ok()
                .and_then(|v| v.get("job").and_then(|j| j.as_num()))
                .expect("log line parses") as usize
        })
        .collect();
    assert_eq!(ids.len(), total, "log should hold each job exactly once");
    assert_eq!(
        ids.iter().copied().collect::<BTreeSet<_>>().len(),
        total,
        "a job was executed (and logged) twice"
    );
}

#[test]
fn reports_are_identical_across_thread_counts() {
    let (_d1, r1) = run_full("threads1", 1);
    let (_d2, r2) = run_full("threads2", 2);
    let (_d8, r8) = run_full("threads8", 8);
    assert_eq!(r1, r2, "threads=2 changed the report bytes");
    assert_eq!(r1, r8, "threads=8 changed the report bytes");
}

#[test]
fn a_torn_log_tail_is_discarded_and_the_job_reruns() {
    let (_full_dir, full_report) = run_full("torn-ref", 1);

    let dir = scratch("torn");
    let campaign = Campaign::create(spec(), &dir).expect("create");
    assert!(campaign.run(1, Some(4)).expect("run").is_none());
    // Simulate kill -9 mid-append: chop the last line in half.
    let log_path = dir.join(JOB_LOG);
    let log = fs::read_to_string(&log_path).expect("log");
    let torn = &log[..log.len() - 30];
    fs::write(&log_path, torn).expect("truncate");

    let resumed = Campaign::resume(&dir).expect("resume");
    // The torn record no longer counts as completed.
    assert_eq!(resumed.completed().expect("tolerates torn tail").len(), 3);
    // Append one job onto the torn log: the tail must be truncated
    // first, not glued onto — gluing would leave a corrupt *mid-file*
    // line that poisons every later read of the log.
    assert!(resumed.run(1, Some(1)).expect("run").is_none());
    let second = Campaign::resume(&dir).expect("second resume");
    assert_eq!(
        second
            .completed()
            .expect("log stays parseable after append")
            .len(),
        4
    );
    // ...and the rerun restores a byte-identical report.
    second.run(1, None).expect("run").expect("completes");
    assert_eq!(fs::read(dir.join(REPORT)).expect("report"), full_report);
}

#[test]
fn export_from_a_spec_touches_nothing_on_disk() {
    let dir = scratch("offline");
    let campaign = Campaign::offline(spec(), &dir);
    let capsule = campaign.job_capsule(0).expect("export");
    assert_eq!(capsule.seed, campaign.job_seed(0));
    assert!(
        !dir.exists(),
        "offline export created {} as a side effect",
        dir.display()
    );
}

#[test]
fn every_job_exports_as_a_replayable_capsule() {
    let dir = scratch("export");
    let campaign = Campaign::create(spec(), &dir).expect("create");
    let report = campaign.run(1, None).expect("run").expect("completes");
    let records = campaign.completed().expect("log");

    // Export the first job of each scheme and re-execute it from the
    // capsule alone: the outcome must match what the campaign logged.
    for &job in &[0usize, campaign.total_jobs() - 1] {
        let capsule = campaign.job_capsule(job).expect("export");
        let run = replay_capsule(&capsule, &capsule.engine, capsule.shards).expect("replay");
        let logged = records.iter().find(|r| r.job == job).expect("job logged");
        assert_eq!(
            run.report.outcome.label(),
            logged.outcome,
            "job {job} replayed to a different outcome"
        );
    }
    let _ = report;
}

/// The §7 adversary grid: every attack vector crossed with every fault
/// family, single-seeded to stay CI-sized.
const ATTACK_SPEC: &str = r#"
name = "attack-fault"
schemes = ["lr-seluge"]
topologies = ["star:4"]
loss_ppm = [100_000]
faults = ["crash=0.6,reboot=5-20", "flap=0.4", "degrade=0.6", "drift=200000"]
attackers = ["bogus=4", "forgesig=4", "forgeadv=4", "dor=2", "spoofdor=2"]
seeds = 1
image_bytes = 512
deadline_s = 1200
stall_s = 300
max_sim_s = 1200
"#;

fn attack_spec() -> CampaignSpec {
    CampaignSpec::parse(ATTACK_SPEC).expect("attack spec parses")
}

fn metric_index(name: &str) -> usize {
    ExperimentMetrics::NAMES
        .iter()
        .position(|n| *n == name)
        .expect("known metric")
}

#[test]
fn fault_and_attacker_tokens_survive_canonicalization() {
    // Parse → canonical string → parse must be the identity for every
    // token family: that is what makes manifests and capsule tags
    // stable spellings rather than whatever the user typed.
    let horizon = Duration::from_secs(600);
    for token in [
        "none",
        "crash=0.5",
        "crash=0.5,reboot=10-60",
        "flap=0.25",
        "degrade=0.75",
        "drift=150000",
        "crash=0.3,reboot=5-20,flap=0.2,degrade=0.1,drift=40000",
    ] {
        let config = fault_config(token, horizon).expect("fault token parses");
        let canonical = canonical_fault_token(&config);
        let reparsed = fault_config(&canonical, horizon).expect("canonical form parses");
        assert_eq!(reparsed, config, "fault token {token:?} drifted");
    }
    for token in [
        "bogus=4",
        "forgesig=2.5",
        "forgeadv=1",
        "dor=2,burst=3-9",
        "spoofdor=2,n=3,burst=1-4",
        "bogus=8,n=2",
    ] {
        let config = attack_config(token)
            .expect("attack token parses")
            .expect("a vector token yields a config");
        let canonical = canonical_attack_token(&config);
        let reparsed = attack_config(&canonical)
            .expect("canonical form parses")
            .expect("canonical form yields a config");
        assert_eq!(reparsed, config, "attack token {token:?} drifted");
    }
}

#[test]
fn specs_with_malformed_fault_or_attacker_tokens_are_rejected() {
    for (field, value) in [
        ("faults", "reboot=10-60"),           // reboot without crash
        ("faults", "crash=1.5"),              // rate out of range
        ("faults", "warp=0.5"),               // unknown knob
        ("faults", "crash=0.5,reboot=60-10"), // inverted window
        ("attackers", "bogus=0"),             // zero rate
        ("attackers", "bogus=4,dor=2"),       // two vectors in one token
        ("attackers", "burst=3-9"),           // no vector knob
        ("attackers", "bogus=4,n=99"),        // attacker count over the cap
        ("attackers", "evil=1"),              // unknown knob
    ] {
        let spec = format!("name = \"bad\"\nschemes = [\"lr-seluge\"]\n{field} = [\"{value}\"]\n");
        assert!(
            CampaignSpec::parse(&spec).is_err(),
            "{field} token {value:?} should be rejected at parse time"
        );
    }
}

#[test]
fn attack_fault_sweep_completes_with_zero_violations() {
    let dir = scratch("attack-sweep");
    let campaign = Campaign::create(attack_spec(), &dir).expect("create");
    let report = campaign.run(2, None).expect("run").expect("completes");
    assert_eq!(report.jobs, campaign.total_jobs());

    let completion = metric_index("completion_frac");
    let inflation = metric_index("verify_inflation");
    let energy = metric_index("energy_j");
    for record in campaign.completed().expect("log") {
        assert_ne!(
            record.outcome, "invariant_violated",
            "job {} leaked unauthenticated bytes into a page buffer",
            record.job
        );
        let frac = record.metrics[completion];
        assert!(
            (0.0..=1.0).contains(&frac),
            "job {}: completion fraction {frac} out of range",
            record.job
        );
        assert!(
            record.metrics[inflation].is_finite() && record.metrics[inflation] >= 0.0,
            "job {}: verification inflation must be a finite count per node",
            record.job
        );
        assert!(
            record.metrics[energy] > 0.0,
            "job {}: a run that exchanged packets drained energy",
            record.job
        );
    }

    // The streaming report carries the degradation axes per cell.
    let json = fs::read_to_string(dir.join(REPORT)).expect("report");
    for key in ["completion_frac", "verify_inflation", "energy_j"] {
        assert!(
            json.contains(&format!("\"{key}\"")),
            "report.json lost the {key} aggregate"
        );
    }
}

#[test]
fn attacked_jobs_replay_bit_identically_on_both_engines() {
    let campaign = Campaign::offline(attack_spec(), PathBuf::new());
    // One job per attacker family: the attacker axis is innermost in
    // the canonical cell order, so consecutive jobs walk the vectors.
    for job in 0..5 {
        let capsule = campaign.job_capsule(job).expect("export");
        let seq = replay_capsule(&capsule, SEQUENTIAL_ENGINE, 1).expect("sequential replay");
        let sharded = replay_capsule(&capsule, SHARDED_ENGINE, 2).expect("sharded replay");
        // Each engine reproduces itself bit-for-bit...
        let seq2 = replay_capsule(&capsule, SEQUENTIAL_ENGINE, 1).expect("sequential again");
        let sharded2 = replay_capsule(&capsule, SHARDED_ENGINE, 2).expect("sharded again");
        assert_eq!(
            seq.digest, seq2.digest,
            "job {job}: sequential replay is not bit-identical under attack"
        );
        assert_eq!(
            sharded.digest, sharded2.digest,
            "job {job}: sharded replay is not bit-identical under attack"
        );
        // ...and the engines agree on the verdict. (Their event orders
        // and timings differ by design — see `bisect_capsule_engines` —
        // so cross-engine bit-identity is per-engine digest fidelity,
        // the same contract the `replay` bin verifies.)
        assert_eq!(
            seq.report.outcome, sharded.report.outcome,
            "job {job}: engines disagree on the outcome"
        );
    }
}

#[test]
fn an_attacked_capsule_shrinks_via_ddmin() {
    let campaign = Campaign::offline(attack_spec(), PathBuf::new());
    let mut capsule = campaign.job_capsule(0).expect("export");

    // Overwrite the fault schedule with one that provably breaks the
    // run — partition the base station from every receiver before
    // dissemination starts, which trips the stall watchdog (crashing
    // nodes would not do: a crashed node is excluded from the
    // completion predicate) — plus noise events ddmin should strip.
    let mut plan = FaultPlan::new();
    for node in 1..capsule.topology.len() as u32 {
        plan.push(FaultEvent::LinkDown {
            from: NodeId(0),
            to: NodeId(node),
            at: SimTime(1_000_000),
        });
        plan.push(FaultEvent::LinkDown {
            from: NodeId(node),
            to: NodeId(0),
            at: SimTime(1_000_000),
        });
    }
    for node in 1..capsule.topology.len() as u32 {
        plan.push(FaultEvent::Reboot {
            node: NodeId(node),
            at: SimTime(3_000_000),
        });
    }
    capsule.faults = plan.clone();

    let fails = |plan: &FaultPlan| {
        let mut candidate = capsule.clone();
        candidate.faults = plan.clone();
        replay_capsule(&candidate, SEQUENTIAL_ENGINE, 1)
            .map(|run| run.report.outcome != Outcome::Complete)
            .unwrap_or(false)
    };
    assert!(fails(&plan), "the seeded fault plan must break the run");

    let (minimal, stats) = shrink_fault_plan(&plan, fails);
    assert!(
        minimal.len() < plan.len(),
        "ddmin failed to strip any of the noise events"
    );
    assert!(fails(&minimal), "the shrunk plan no longer reproduces");
    assert_eq!(stats.from, plan.len());
    assert_eq!(stats.to, minimal.len());
}

#[test]
fn an_attacked_run_that_stalls_dumps_a_replayable_failure_capsule() {
    // Near-total loss: no page traffic survives, so the stall watchdog
    // trips deterministically while the attack plan is active.
    let spec = CampaignSpec::parse(
        r#"
name = "attack-stall"
schemes = ["lr-seluge"]
topologies = ["star:4"]
loss_ppm = [990_000]
faults = ["none"]
attackers = ["bogus=4"]
seeds = 1
image_bytes = 512
deadline_s = 600
stall_s = 60
max_sim_s = 600
"#,
    )
    .expect("stall spec parses");
    let dir = scratch("attack-stall");
    let campaign = Campaign::create(spec, &dir).expect("create");
    let report = campaign.run(1, None).expect("run").expect("completes");
    assert!(
        !report.failures.is_empty(),
        "a stalled attacked job must dump a failure capsule"
    );

    let path = PathBuf::from(&report.failures[0]);
    assert!(path.exists(), "missing failure capsule {}", path.display());
    let capsule = Capsule::load(&path).expect("failure capsule loads");
    let seq = replay_capsule(&capsule, SEQUENTIAL_ENGINE, 1).expect("sequential replay");
    let seq2 = replay_capsule(&capsule, SEQUENTIAL_ENGINE, 1).expect("sequential again");
    let sharded = replay_capsule(&capsule, SHARDED_ENGINE, 2).expect("sharded replay");
    assert_eq!(seq.report.outcome, Outcome::Stalled);
    assert_eq!(seq.report.outcome, sharded.report.outcome);
    assert_eq!(
        seq.digest, seq2.digest,
        "the failure capsule must replay bit-identically"
    );
}

#[test]
fn create_refuses_an_existing_campaign_dir() {
    let dir = scratch("refuse");
    Campaign::create(spec(), &dir).expect("create");
    let err = match Campaign::create(spec(), &dir) {
        Ok(_) => panic!("second create on the same dir should fail"),
        Err(e) => e,
    };
    assert!(err.contains("resume"), "unhelpful error: {err}");
}

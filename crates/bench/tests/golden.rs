//! Golden-file regression test: a tiny fig3-style one-hop sweep is
//! pinned against checked-in CSV and JSON outputs.
//!
//! This guards the full chain at once — simulator determinism, the
//! parallel harness, metric aggregation, and the exact result-file
//! formats. If a change legitimately alters the numbers or the schema,
//! regenerate the files with:
//!
//! ```text
//! LRS_BLESS=1 cargo test -p lrs-bench --test golden
//! ```
//!
//! and review the diff like any other code change.

use lr_seluge::LrSelugeParams;
use lrs_bench::{
    aggregate, matched_seluge_params, run_lr, run_seluge, sample_grid, Json, JsonReport, RunSpec,
    Table,
};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn tiny_lr() -> LrSelugeParams {
    LrSelugeParams {
        image_len: 1024,
        k: 8,
        n: 12,
        payload_len: 56,
        k0: 4,
        n0: 8,
        puzzle_strength: 4,
        ..LrSelugeParams::default()
    }
}

/// The sweep under test: one-hop, N = 2, p ∈ {0.0, 0.2}, 2 seeds,
/// Seluge and LR-Seluge interleaved — a miniature fig3(a).
fn tiny_fig3_sweep() -> (Table, JsonReport) {
    let seeds = 2;
    let threads = 2; // fixed, so the pinned "threads" field is stable
    let lr = tiny_lr();
    let seluge = matched_seluge_params(&lr);
    let n_rx = 2usize;
    let ps = [0.0f64, 0.2];
    let points: Vec<(f64, bool)> = ps.iter().flat_map(|&p| [(p, false), (p, true)]).collect();
    let grid = sample_grid(&points, seeds, threads, |&(p, is_lr), seed| {
        let spec = RunSpec::one_hop(n_rx, p);
        if is_lr {
            run_lr(&spec, lr, seed)
        } else {
            run_seluge(&spec, seluge, seed)
        }
    });
    let mut table = Table::new(vec!["p", "seluge_sim", "lr_sim"]);
    let mut report = JsonReport::new("fig3_tiny", seeds, threads);
    for (i, &p) in ps.iter().enumerate() {
        let s = aggregate(&grid[2 * i]).page_data_pkts;
        let l = aggregate(&grid[2 * i + 1]).page_data_pkts;
        report.push_row(
            &[("p", Json::num(p)), ("scheme", Json::str("seluge"))],
            &grid[2 * i],
        );
        report.push_row(
            &[("p", Json::num(p)), ("scheme", Json::str("lr-seluge"))],
            &grid[2 * i + 1],
        );
        table.row(vec![
            format!("{p:.2}"),
            format!("{s:.1}"),
            format!("{l:.1}"),
        ]);
    }
    (table, report)
}

fn check(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("LRS_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with LRS_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "{name} drifted from its golden copy; if intentional, re-bless with LRS_BLESS=1"
    );
}

#[test]
fn tiny_fig3_sweep_matches_golden_files() {
    let (table, report) = tiny_fig3_sweep();
    check("fig3_tiny.csv", &table.to_csv());
    check("fig3_tiny.json", &report.to_json().render());
}

//! Integration tests for the cross-campaign diff engine: the exact
//! properties the CI regression gate relies on, exercised through the
//! library (`lrs_bench::diff`) on both synthetic reports and the
//! committed campaign smoke golden.

use lrs_bench::diff::{diff_reports, higher_is_better, ReportDoc, Verdict, DEFAULT_ALPHA};

/// Path to the committed golden, relative to the workspace root the
/// test runs from (`CARGO_MANIFEST_DIR` is crates/bench).
fn golden_path() -> String {
    format!(
        "{}/../../results/campaign_smoke_golden.json",
        env!("CARGO_MANIFEST_DIR")
    )
}

/// One synthetic metric row: (name, n, mean, ci95).
type SynthMetric<'a> = (&'a str, u64, f64, f64);
/// One synthetic cell: (scheme, loss_ppm, metrics).
type SynthCell<'a> = (&'a str, u32, &'a [SynthMetric<'a>]);

/// Builds a small synthetic report: `cells` of (scheme, loss_ppm),
/// each metric rendered from explicit (n, mean, ci95).
fn synth_report(name: &str, cells: &[SynthCell]) -> ReportDoc {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"campaign\":\"{name}\",\"jobs\":{},\"seeds\":3,\"cells\":[",
        cells.len() * 3
    ));
    for (i, (scheme, loss, metrics)) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"params\":{{\"scheme\":\"{scheme}\",\"topology\":\"star:6\",\
             \"loss_ppm\":{loss},\"fault\":\"none\",\"attacker\":\"none\"}},\
             \"jobs\":3,\"outcomes\":{{\"complete\":3}},\"metrics\":{{"
        ));
        for (j, (metric, n, mean, ci95)) in metrics.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{metric}\":{{\"n\":{n},\"mean\":{mean},\"ci95\":{ci95},\
                 \"p50\":{mean},\"p95\":{mean}}}"
            ));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    ReportDoc::parse(&out).unwrap_or_else(|e| panic!("synthetic report invalid: {e}"))
}

#[test]
fn golden_self_diff_is_clean() {
    let golden = ReportDoc::load(&golden_path()).expect("golden loads");
    assert_eq!(golden.cells.len(), 8, "smoke grid is 8 cells");
    let diff = diff_reports(&golden, &golden, DEFAULT_ALPHA).unwrap();
    assert_eq!(diff.cells.len(), 8);
    assert!(diff.a_only_cells.is_empty() && diff.b_only_cells.is_empty());
    assert_eq!(diff.significant(), 0, "self-diff must be clean");
    assert_eq!(diff.regressions(), 0);
    for cell in &diff.cells {
        assert_eq!(cell.verdict, Verdict::NoChange);
        for m in &cell.metrics {
            assert_eq!(m.delta, 0.0, "{}: {}", cell.key, m.name);
            if let Some(t) = &m.test {
                assert_eq!(t.p, 1.0, "identical groups give p = 1");
            }
        }
    }
}

#[test]
fn injected_perturbation_is_flagged_as_regression() {
    let golden = ReportDoc::load(&golden_path()).expect("golden loads");
    let mut perturbed = golden.clone();
    // verify_inflation has zero variance in the golden, so any mean
    // shift yields p = 0 and survives BH regardless of grid size —
    // the same deterministic detection the CI gate relies on.
    let hit = perturbed.inject("verify_inflation", 1.25);
    assert_eq!(hit, 8, "every smoke cell carries verify_inflation");
    let diff = diff_reports(&golden, &perturbed, DEFAULT_ALPHA).unwrap();
    assert_eq!(diff.regressions(), 8, "one regression per cell");
    assert_eq!(diff.improvements(), 0);
    for cell in &diff.cells {
        assert_eq!(cell.verdict, Verdict::Regression);
        let m = cell
            .metrics
            .iter()
            .find(|m| m.name == "verify_inflation")
            .unwrap();
        assert!(m.significant && m.q == 0.0 && !m.ci_overlap);
        assert!(m.delta > 0.0);
    }
    // The same shift downward on a lower-is-better metric is an
    // improvement, not a regression.
    let mut better = golden.clone();
    better.inject("verify_inflation", 0.8);
    let diff = diff_reports(&golden, &better, DEFAULT_ALPHA).unwrap();
    assert_eq!(diff.regressions(), 0);
    assert_eq!(diff.improvements(), 8);
}

#[test]
fn polarity_flips_the_verdict_for_completion_metrics() {
    assert!(higher_is_better("completed"));
    assert!(!higher_is_better("latency_s"));
    let metrics_a: &[(&str, u64, f64, f64)] = &[("completed", 3, 1.0, 0.0)];
    let metrics_b: &[(&str, u64, f64, f64)] = &[("completed", 3, 0.5, 0.0)];
    let a = synth_report("a", &[("lr-seluge", 50_000, metrics_a)]);
    let b = synth_report("b", &[("lr-seluge", 50_000, metrics_b)]);
    // completed dropped: higher-is-better, so this is a regression.
    let diff = diff_reports(&a, &b, DEFAULT_ALPHA).unwrap();
    assert_eq!(diff.regressions(), 1);
    // And the reverse direction is an improvement.
    let diff = diff_reports(&b, &a, DEFAULT_ALPHA).unwrap();
    assert_eq!(diff.regressions(), 0);
    assert_eq!(diff.improvements(), 1);
}

#[test]
fn asymmetric_grids_diff_over_the_intersection() {
    let m: &[(&str, u64, f64, f64)] = &[("data_pkts", 3, 50.0, 4.0)];
    let a = synth_report("a", &[("lr-seluge", 50_000, m), ("lr-seluge", 200_000, m)]);
    let b = synth_report("b", &[("lr-seluge", 50_000, m), ("seluge", 50_000, m)]);
    let diff = diff_reports(&a, &b, DEFAULT_ALPHA).unwrap();
    assert_eq!(diff.cells.len(), 1, "only the shared cell pairs");
    assert_eq!(diff.cells[0].key.loss_ppm, 50_000);
    assert_eq!(diff.a_only_cells.len(), 1);
    assert_eq!(diff.a_only_cells[0].loss_ppm, 200_000);
    assert_eq!(diff.b_only_cells.len(), 1);
    assert_eq!(diff.b_only_cells[0].scheme, "seluge");
    assert_eq!(diff.significant(), 0);
}

#[test]
fn legacy_nine_metric_reports_pair_against_twelve_metric_reports() {
    // The 9-metric era lacked completion_frac / verify_inflation /
    // energy_j and the min/max extrema fields.
    let legacy: &[(&str, u64, f64, f64)] = &[
        ("page_data_pkts", 3, 40.0, 5.0),
        ("data_pkts", 3, 48.0, 6.0),
        ("snack_pkts", 3, 19.0, 1.0),
        ("adv_pkts", 3, 2.0, 1.0),
        ("total_bytes", 3, 4200.0, 300.0),
        ("latency_s", 3, 2.6, 0.4),
        ("completed", 3, 1.0, 0.0),
        ("sig_verifications", 3, 5.0, 0.0),
        ("auth_rejects", 3, 0.0, 0.0),
    ];
    let a = synth_report("legacy", &[("lr-seluge", 50_000, legacy)]);
    let b = ReportDoc::load(&golden_path()).expect("golden loads");
    assert!(a.cells[0].metrics.iter().all(|(_, m)| m.min.is_none()));
    let diff = diff_reports(&a, &b, DEFAULT_ALPHA).unwrap();
    assert_eq!(diff.cells.len(), 1, "the one legacy cell pairs");
    let cell = &diff.cells[0];
    assert_eq!(
        cell.metrics.len(),
        9,
        "intersection is the 9 shared metrics"
    );
    assert_eq!(
        cell.b_only_metrics,
        vec!["completion_frac", "verify_inflation", "energy_j"]
    );
    assert!(cell.a_only_metrics.is_empty());
}

#[test]
fn mismatched_seed_counts_still_test() {
    // n = 3 vs n = 12 with a decisive shift: Welch handles unequal n
    // (and unequal variance) without any balancing assumption.
    let small: &[(&str, u64, f64, f64)] = &[("latency_s", 3, 2.0, 0.1)];
    let large: &[(&str, u64, f64, f64)] = &[("latency_s", 12, 8.0, 0.2)];
    let a = synth_report("a", &[("lr-seluge", 50_000, small)]);
    let b = synth_report("b", &[("lr-seluge", 50_000, large)]);
    let diff = diff_reports(&a, &b, DEFAULT_ALPHA).unwrap();
    let m = &diff.cells[0].metrics[0];
    assert_eq!((m.a.n, m.b.n), (3, 12));
    let t = m.test.as_ref().expect("both sides have n >= 2");
    assert!(t.p < 1e-6, "6-sigma shift is decisive, p = {}", t.p);
    assert_eq!(m.verdict, Verdict::Regression, "latency rose");
}

#[test]
fn single_seed_cells_are_untestable_not_errors() {
    let one: &[(&str, u64, f64, f64)] = &[("data_pkts", 1, 50.0, 0.0)];
    let three: &[(&str, u64, f64, f64)] = &[("data_pkts", 3, 90.0, 2.0)];
    let a = synth_report("a", &[("lr-seluge", 50_000, one)]);
    let b = synth_report("b", &[("lr-seluge", 50_000, three)]);
    let diff = diff_reports(&a, &b, DEFAULT_ALPHA).unwrap();
    let m = &diff.cells[0].metrics[0];
    assert!(m.test.is_none(), "n = 1 has no variance to test");
    assert!(!m.significant);
    assert_eq!(m.verdict, Verdict::NoChange);
    assert_eq!(diff.comparisons, 0, "untestable pairs stay out of BH's m");
    // The mean shift is still reported for the human table.
    assert_eq!(m.delta, 40.0);
}

#[test]
fn duplicate_cell_keys_are_rejected() {
    let m: &[(&str, u64, f64, f64)] = &[("data_pkts", 3, 50.0, 4.0)];
    let text = {
        // Two cells with identical params.
        let doc = synth_report("dup", &[("lr-seluge", 50_000, m)]);
        let _ = doc;
        let cell = "{\"params\":{\"scheme\":\"lr-seluge\",\"topology\":\"star:6\",\
                     \"loss_ppm\":50000,\"fault\":\"none\",\"attacker\":\"none\"},\
                     \"jobs\":3,\"outcomes\":{\"complete\":3},\"metrics\":{\
                     \"data_pkts\":{\"n\":3,\"mean\":50,\"ci95\":4,\"p50\":50,\"p95\":50}}}";
        format!("{{\"campaign\":\"dup\",\"jobs\":6,\"seeds\":3,\"cells\":[{cell},{cell}]}}")
    };
    let err = ReportDoc::parse(&text).unwrap_err();
    assert!(err.contains("ambiguous"), "got: {err}");
}

#[test]
fn malformed_reports_are_typed_errors() {
    for (text, needle) in [
        ("[]", "campaign"),
        ("{\"campaign\":\"x\"}", "jobs"),
        ("{\"campaign\":\"x\",\"jobs\":1,\"seeds\":1}", "cells"),
        (
            "{\"campaign\":\"x\",\"jobs\":1,\"seeds\":1,\"cells\":[{}]}",
            "params",
        ),
    ] {
        let err = ReportDoc::parse(text).unwrap_err();
        assert!(err.contains(needle), "{text}: got {err:?}");
    }
}

#[test]
fn stalled_cells_with_null_means_are_untestable() {
    // A metric whose every sample was non-finite renders as null; the
    // parser maps that to NaN, which must flow through as untestable
    // rather than poisoning BH or the verdicts.
    let text = "{\"campaign\":\"stalled\",\"jobs\":3,\"seeds\":3,\"cells\":[\
                {\"params\":{\"scheme\":\"lr-seluge\",\"topology\":\"star:6\",\
                \"loss_ppm\":900000,\"fault\":\"none\",\"attacker\":\"none\"},\
                \"jobs\":3,\"outcomes\":{\"stalled\":3},\"metrics\":{\
                \"latency_s\":{\"n\":3,\"mean\":null,\"ci95\":null,\"p50\":null,\"p95\":null}}}]}";
    let doc = ReportDoc::parse(text).unwrap();
    assert!(doc.cells[0].metrics[0].1.mean.is_nan());
    let diff = diff_reports(&doc, &doc, DEFAULT_ALPHA).unwrap();
    let m = &diff.cells[0].metrics[0];
    assert!(m.test.is_none(), "NaN means are untestable by policy");
    assert!(m.q.is_nan() && !m.significant);
    assert_eq!(m.verdict, Verdict::NoChange);
    assert_eq!(diff.significant(), 0);
}

//! Control-protocol wire robustness for the swarm harness, in the same
//! fixed-seed fuzz style as `crates/deluge/tests/wire_fuzz.rs`: the
//! harness parses `NodeReport` lines off an open UDP socket, so the
//! parser must round-trip everything `encode` can emit, reject
//! corruption (duplicate keys, malformed digests), and never panic on
//! arbitrary text.

use lr_seluge_repro::swarm::NodeReport;
use lrs_crypto::sha256::sha256;
use lrs_rng::DetRng;

fn arbitrary_report(rng: &mut DetRng) -> NodeReport {
    let complete = rng.gen_bool(0.5);
    // A digest is only ever present alongside completion, and is
    // always the 64-lowercase-hex output of sha256::to_hex.
    let digest = if complete && rng.gen_bool(0.8) {
        let mut image = vec![0u8; rng.gen_range(1usize..64)];
        rng.fill_bytes(&mut image);
        Some(sha256(&image).to_hex())
    } else {
        None
    };
    NodeReport {
        id: rng.gen_range(0u64..1 << 32) as u32,
        complete,
        invariants_ok: rng.gen_bool(0.9),
        digest,
        tx_frames: rng.gen_range(0u64..1 << 48),
        rx_frames: rng.gen_range(0u64..1 << 48),
        rx_rejected: rng.gen_range(0u64..1 << 16),
    }
}

/// Every encodable report parses back to itself.
#[test]
fn report_encode_parse_round_trips() {
    let mut rng = DetRng::seed_from_u64(0x7265_706f_7274);
    for case in 0..512 {
        let report = arbitrary_report(&mut rng);
        let line = report.encode();
        assert_eq!(
            NodeReport::parse(&line),
            Some(report),
            "case {case}: {line}"
        );
    }
}

/// Appending a duplicate of any key to a valid line makes it
/// unparseable — a datagram that states a field twice is corrupt, and
/// "last wins" would let a mangled retransmission flip `complete` or
/// `invariants` silently.
#[test]
fn duplicated_fields_are_rejected() {
    let mut rng = DetRng::seed_from_u64(0x6475_7073);
    for _ in 0..128 {
        let line = arbitrary_report(&mut rng).encode();
        let fields: Vec<&str> = line
            .strip_prefix("lrs-swarm report ")
            .expect("encode emits the prefix")
            .split_whitespace()
            .collect();
        for field in &fields {
            let corrupted = format!("{line} {field}");
            assert_eq!(NodeReport::parse(&corrupted), None, "dup {field:?}");
        }
    }
}

/// Mutating any single character of a valid digest to a non-lowercase-
/// hex byte makes the line unparseable, as do truncated/extended ones.
#[test]
fn malformed_digests_are_rejected() {
    let digest = sha256(b"control wire").to_hex();
    let line = |d: &str| {
        format!("lrs-swarm report id=3 complete=1 invariants=1 digest={d} tx=9 rx=9 rejected=0")
    };
    assert!(NodeReport::parse(&line(&digest)).is_some());
    for (i, bad_char) in [(0, 'G'), (31, 'Z'), (63, '!'), (10, 'A')] {
        let mut mutated: Vec<char> = digest.chars().collect();
        mutated[i] = bad_char;
        let mutated: String = mutated.into_iter().collect();
        assert_eq!(NodeReport::parse(&line(&mutated)), None, "{mutated}");
    }
    assert_eq!(NodeReport::parse(&line(&digest[..63])), None, "truncated");
    assert_eq!(
        NodeReport::parse(&line(&format!("{digest}0"))),
        None,
        "extended"
    );
    assert_eq!(
        NodeReport::parse(&line(&digest.to_uppercase())),
        None,
        "uppercase"
    );
}

/// Arbitrary text never panics the parser (it reads raw datagrams).
#[test]
fn parser_never_panics_on_arbitrary_text() {
    let mut rng = DetRng::seed_from_u64(0x6c69_6e65);
    let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789=- _\t"
        .chars()
        .collect();
    for _ in 0..512 {
        let len = rng.gen_range(0usize..120);
        let mut line = String::from("lrs-swarm report ");
        for _ in 0..len {
            line.push(alphabet[rng.gen_range(0u64..alphabet.len() as u64) as usize]);
        }
        let _ = NodeReport::parse(&line);
    }
    // And truncations of a valid line parse to None or Some, no panics.
    let valid = NodeReport {
        id: 1,
        complete: false,
        invariants_ok: true,
        digest: None,
        tx_frames: 10,
        rx_frames: 20,
        rx_rejected: 0,
    }
    .encode();
    for cut in 0..valid.len() {
        let _ = NodeReport::parse(&valid[..cut]);
    }
}

//! Differential check: the same scenario executed by the discrete-event
//! simulator and by real-time channel-backed hosts must agree.
//!
//! Both drivers run the *identical* `Protocol` state machines built
//! from one [`SwarmScenario`]; the simulator schedules them on virtual
//! time while the hosts run on the scaled monotonic clock with a lossy
//! in-process router between them. The end states must line up: every
//! node completes, the sim checker's invariants hold on both sides, and
//! every node on both sides reassembles the byte-identical image.
//!
//! This is the loopback (no-UDP) version of what the `swarm` binary
//! asserts across OS processes, fast enough for tier-1 CI.

use lr_seluge_repro::lrs_host::{ChannelTransport, Host, HostConfig, NodeId};
use lr_seluge_repro::swarm::{LossyLinks, NodeStatus, SchemeKind, SwarmScenario};
use lrs_netsim::fault::FaultPlan;
use lrs_netsim::sim::Outcome;
use lrs_netsim::time::Duration as SimDuration;
use lrs_netsim::topology::Topology;
use lrs_netsim::SimBuilder;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

const NODES: usize = 5;

fn scenario(scheme: SchemeKind) -> SwarmScenario {
    SwarmScenario {
        scheme,
        profile: "campaign".into(),
        image_len: 768,
        key_context: "loopback differential".into(),
        seed: 11,
    }
}

/// Runs the scenario in the discrete-event simulator and harvests each
/// node's final status.
fn run_sim(scenario: &SwarmScenario) -> Vec<NodeStatus> {
    let image = scenario.image().expect("image");
    let run = SimBuilder::new(Topology::star(NODES), scenario.seed, |id| {
        scenario.build_node(id).expect("node")
    })
    .run_sharded(SimDuration::from_secs(10_000), |_, node| {
        node.status(&image)
    });
    assert_eq!(run.report.outcome, Outcome::Complete, "sim run completed");
    run.harvest
}

/// Runs the scenario on real-time hosts wired through an in-process
/// lossy router and harvests each node's final status.
fn run_hosts(scenario: &SwarmScenario) -> Vec<NodeStatus> {
    let image = Arc::new(scenario.image().expect("image"));
    let cfg = HostConfig {
        // 50x so the protocol's multi-second timers fire every few
        // tens of milliseconds: the whole dissemination takes ~1 s.
        time_scale: 50,
        ..HostConfig::default()
    };

    // Every host sends into one shared router queue; the router fans
    // frames out to everyone but the sender, through the same loss
    // model vocabulary the UDP proxy uses.
    let (to_router, router_rx) = mpsc::channel::<Vec<u8>>();
    let mut host_rxs = Vec::new();
    let mut host_txs = Vec::new();
    for _ in 0..NODES {
        let (tx, rx) = mpsc::channel::<Vec<u8>>();
        host_txs.push(tx);
        host_rxs.push(rx);
    }
    let router = std::thread::spawn(move || {
        let mut links = LossyLinks::new(20_000, 5_000, 10_000, &FaultPlan::new(), 11);
        // Exits when every host thread has returned and dropped its
        // clone of the router sender.
        while let Ok(frame) = router_rx.recv() {
            let Some(decoded) = lr_seluge_repro::lrs_host::decode_frame(&frame) else {
                continue;
            };
            let from = decoded.from;
            for (dest, tx) in host_txs.iter().enumerate() {
                if dest as u32 == from.0 {
                    continue;
                }
                let verdict = links.verdict(from, NodeId(dest as u32));
                for _ in 0..verdict.copies {
                    let _ = tx.send(frame.clone());
                }
            }
        }
    });

    let done = Arc::new(AtomicUsize::new(0));
    let mut threads = Vec::new();
    for (id, rx) in host_rxs.into_iter().enumerate() {
        let transport = ChannelTransport::new(to_router.clone(), rx);
        let scenario = scenario.clone();
        let done = Arc::clone(&done);
        let image = Arc::clone(&image);
        threads.push(std::thread::spawn(move || {
            // The LR node's digest memo is Rc-based, so the protocol is
            // built inside its thread, as the sharded engine does.
            let protocol = scenario.build_node(NodeId(id as u32)).expect("node");
            let mut host = Host::new(NodeId(id as u32), protocol, transport, scenario.seed, cfg);
            host.run(Duration::from_secs(60)).expect("host run");
            done.fetch_add(1, Ordering::SeqCst);
            // A completed node is a seeder: keep answering until the
            // whole swarm is done.
            while done.load(Ordering::SeqCst) < NODES {
                host.step().expect("host step");
            }
            host.protocol().status(&image)
        }));
    }
    drop(to_router);
    let statuses: Vec<NodeStatus> = threads
        .into_iter()
        .map(|t| t.join().expect("host thread"))
        .collect();
    router.join().expect("router thread");
    statuses
}

fn differential(scheme: SchemeKind) {
    let scenario = scenario(scheme);
    let expected = scenario.expected_digest().expect("digest");
    let sim = run_sim(&scenario);
    let hosts = run_hosts(&scenario);
    assert_eq!(sim.len(), NODES);
    assert_eq!(hosts.len(), NODES);
    for (id, (s, h)) in sim.iter().zip(&hosts).enumerate() {
        assert!(s.complete, "{scheme:?} sim node {id} complete");
        assert!(h.complete, "{scheme:?} host node {id} complete");
        assert!(s.invariants_ok, "{scheme:?} sim node {id} invariants");
        assert!(h.invariants_ok, "{scheme:?} host node {id} invariants");
        assert_eq!(
            s.digest.as_deref(),
            Some(expected.as_str()),
            "{scheme:?} sim node {id} image"
        );
        // The load-bearing agreement: both drivers left every node
        // holding the byte-identical image.
        assert_eq!(s, h, "{scheme:?} node {id} end state diverges");
    }
}

#[test]
fn lr_seluge_sim_and_hosts_agree() {
    differential(SchemeKind::LrSeluge);
}

#[test]
fn seluge_sim_and_hosts_agree() {
    differential(SchemeKind::Seluge);
}

//! Cross-shard determinism of the parallel engine for both real
//! schemes: a fixed seed must produce identical metrics, final images,
//! and merged trace order at every shard count, and PR 3's chaos and
//! invariant machinery must keep working under sharding.
//!
//! Two tiers. The default (tier-1) tests cover both schemes on a 10×10
//! grid at shard counts {1, 2, 4} plus the 8×8 chaos scenario — every
//! shard boundary case (single shard, even split, more shards than
//! convenient) in a few seconds. The original full-size 20×20 sweeps
//! with shard count 8 are `#[ignore]`d and run by a dedicated CI job:
//!
//! ```text
//! cargo test --release --test sharding -- --ignored
//! ```

use lr_seluge::{Deployment, LrSelugeParams};
use lrs_bench::matched_seluge_params;
use lrs_crypto::cluster::ClusterKey;
use lrs_crypto::puzzle::{Puzzle, PuzzleKeyChain};
use lrs_crypto::schnorr::Keypair;
use lrs_deluge::engine::DisseminationNode;
use lrs_deluge::policy::UnionPolicy;
use lrs_netsim::fault::FaultPlan;
use lrs_netsim::node::NodeId;
use lrs_netsim::sim::Outcome;
use lrs_netsim::time::{Duration, SimTime};
use lrs_netsim::topology::Topology;
use lrs_netsim::SimBuilder;
use lrs_seluge::preprocess::SelugeArtifacts;
use lrs_seluge::scheme::SelugeScheme;

/// Fast-core shard counts: 1 (the reference), one even split, one
/// split finer than the grid's row structure.
const FAST_SHARDS: [usize; 3] = [1, 2, 4];
/// Full-sweep shard counts, the original tier: adds the 8-way split.
const FULL_SHARDS: [usize; 4] = [1, 2, 4, 8];

fn small_lr(image_len: usize) -> LrSelugeParams {
    LrSelugeParams {
        image_len,
        k: 8,
        n: 16,
        payload_len: 56,
        k0: 4,
        n0: 8,
        puzzle_strength: 6,
        ..LrSelugeParams::default()
    }
}

fn test_image(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 % 251) as u8).collect()
}

/// Harvested per-node state compared across shard counts.
type NodeResult = (bool, Option<Vec<u8>>);

fn run_lr_sharded(
    grid_side: usize,
    seed: u64,
    shards: usize,
    faults: FaultPlan,
    with_invariants: bool,
) -> lrs_netsim::ShardedRun<NodeResult> {
    let image = test_image(1024);
    let deployment = Deployment::new(&image, small_lr(image.len()), b"sharding tests");
    let artifacts = deployment.artifacts().clone();
    let check_image = image.clone();
    // No shared digest cache here: the memo is Rc-based and nodes are
    // constructed inside shard worker threads.
    let builder = SimBuilder::new(Topology::grid(grid_side, 10.0, 77), seed, |id| {
        deployment.node(id, NodeId(0))
    })
    .faults(faults)
    .shards(shards)
    .collect_trace(true);
    let builder = if with_invariants {
        builder.invariants(move |node: &lr_seluge::deployment::LrNode, _id| {
            node.scheme().verify_invariants(&artifacts, &check_image)
        })
    } else {
        builder
    };
    builder.run_sharded(Duration::from_secs(100_000), |_, node| {
        (
            lrs_netsim::node::Protocol::is_complete(node),
            node.scheme().image(),
        )
    })
}

fn run_seluge_sharded(
    grid_side: usize,
    seed: u64,
    shards: usize,
) -> lrs_netsim::ShardedRun<NodeResult> {
    let image = test_image(1024);
    let params = matched_seluge_params(&small_lr(image.len()));
    let kp = Keypair::from_seed(b"sharding tests");
    let chain = PuzzleKeyChain::generate(b"sharding tests", params.version as u32 + 4);
    let artifacts = SelugeArtifacts::build(&image, params, &kp, &chain);
    let puzzle = Puzzle::new(chain.anchor(), params.puzzle_strength);
    let key = ClusterKey::derive(b"sharding tests", 0);
    SimBuilder::new(Topology::grid(grid_side, 10.0, 77), seed, |id| {
        let scheme = if id == NodeId(0) {
            SelugeScheme::base(&artifacts, kp.public(), puzzle)
        } else {
            SelugeScheme::receiver(params, kp.public(), puzzle)
        };
        DisseminationNode::new(scheme, UnionPolicy::new(), key.clone(), Default::default())
    })
    .shards(shards)
    .collect_trace(true)
    .run_sharded(Duration::from_secs(100_000), |_, node| {
        (
            lrs_netsim::node::Protocol::is_complete(node),
            node.scheme().image(),
        )
    })
}

/// Runs the LR-Seluge grid at every shard count and asserts bit
/// identity with the single-shard baseline.
fn assert_lr_shard_independent(grid_side: usize, seed: u64, shard_counts: &[usize]) {
    let baseline = run_lr_sharded(grid_side, seed, 1, FaultPlan::new(), false);
    assert_eq!(baseline.report.outcome, Outcome::Complete);
    let image = test_image(1024);
    for (complete, img) in &baseline.harvest {
        assert!(complete);
        assert_eq!(img.as_deref(), Some(&image[..]));
    }
    for shards in &shard_counts[1..] {
        let run = run_lr_sharded(grid_side, seed, *shards, FaultPlan::new(), false);
        assert_eq!(run.report.outcome, Outcome::Complete, "@ {shards} shards");
        assert_eq!(
            run.report.final_time, baseline.report.final_time,
            "final time @ {shards} shards"
        );
        assert_eq!(run.metrics, baseline.metrics, "metrics @ {shards} shards");
        assert_eq!(run.energy, baseline.energy, "energy @ {shards} shards");
        assert_eq!(run.harvest, baseline.harvest, "images @ {shards} shards");
        assert_eq!(run.trace, baseline.trace, "trace order @ {shards} shards");
    }
}

/// Seluge twin of [`assert_lr_shard_independent`].
fn assert_seluge_shard_independent(grid_side: usize, seed: u64, shard_counts: &[usize]) {
    let baseline = run_seluge_sharded(grid_side, seed, 1);
    assert_eq!(baseline.report.outcome, Outcome::Complete);
    let image = test_image(1024);
    for (complete, img) in &baseline.harvest {
        assert!(complete);
        assert_eq!(img.as_deref(), Some(&image[..]));
    }
    for shards in &shard_counts[1..] {
        let run = run_seluge_sharded(grid_side, seed, *shards);
        assert_eq!(run.report.outcome, Outcome::Complete, "@ {shards} shards");
        assert_eq!(run.metrics, baseline.metrics, "metrics @ {shards} shards");
        assert_eq!(run.harvest, baseline.harvest, "images @ {shards} shards");
        assert_eq!(run.trace, baseline.trace, "trace order @ {shards} shards");
    }
}

#[test]
fn lr_seluge_is_shard_count_independent_on_10x10_grid() {
    assert_lr_shard_independent(10, 42, &FAST_SHARDS);
}

#[test]
fn seluge_is_shard_count_independent_on_10x10_grid() {
    assert_seluge_shard_independent(10, 7, &FAST_SHARDS);
}

#[test]
#[ignore = "full-size sweep; run by the CI sharding-full job (--ignored)"]
fn lr_seluge_is_shard_count_independent_on_20x20_grid_full() {
    assert_lr_shard_independent(20, 42, &FULL_SHARDS);
}

#[test]
#[ignore = "full-size sweep; run by the CI sharding-full job (--ignored)"]
fn seluge_is_shard_count_independent_on_20x20_grid_full() {
    assert_seluge_shard_independent(20, 7, &FULL_SHARDS);
}

#[test]
fn chaos_under_sharding_keeps_invariants() {
    // A fault plan that spans two shards at every multi-shard count: a
    // crash-and-reboot in the north-west corner and a link outage plus a
    // permanent crash in the south-east one, mid-dissemination.
    let side = 8;
    let n = (side * side) as u32;
    let mut plan = FaultPlan::new();
    plan.crash_and_reboot(
        NodeId(side as u32 + 1),
        SimTime(400_000),
        Duration::from_secs(2),
    );
    plan.crash(NodeId(n - 2), SimTime(700_000));
    plan.link_outage(
        NodeId(n - 1),
        NodeId(n - side as u32 - 1),
        SimTime(300_000),
        Duration::from_secs(1),
    );
    let baseline = run_lr_sharded(side, 3, 1, plan.clone(), true);
    assert_eq!(
        baseline.report.outcome,
        Outcome::Complete,
        "diagnostic: {:?}",
        baseline.report.diagnostic.as_ref().map(|d| &d.reason)
    );
    assert!(
        baseline.report.diagnostic.is_none(),
        "zero violations expected"
    );
    for shards in [2usize, 4] {
        let run = run_lr_sharded(side, 3, shards, plan.clone(), true);
        assert_eq!(run.report.outcome, Outcome::Complete, "@ {shards} shards");
        assert!(run.report.diagnostic.is_none(), "@ {shards} shards");
        assert_eq!(run.metrics, baseline.metrics, "metrics @ {shards} shards");
        assert_eq!(run.trace, baseline.trace, "trace @ {shards} shards");
    }
}

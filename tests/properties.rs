//! Cross-crate property tests: the end-to-end pipeline invariants hold
//! for randomized images, parameters and loss patterns.

use lr_seluge::{Deployment, LrSelugeParams};
use lrs_netsim::fault::{FaultConfig, FaultPlan};
use lrs_netsim::medium::MediumConfig;
use lrs_netsim::node::{NodeId, Protocol};
use lrs_netsim::sim::SimConfig;

use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;
use lrs_netsim::SimBuilder;
use lrs_rng::DetRng;

fn arbitrary_params(rng: &mut DetRng) -> (LrSelugeParams, u64) {
    let k = rng.gen_range(2u16..10);
    let spare = rng.gen_range(1u16..6);
    let payload = rng.gen_range(24usize..64);
    let pages_approx = rng.gen_range(1usize..4);
    let seed = rng.gen_range(0u64..1_000);
    let n = k + spare;
    let k0 = 2u16;
    let n0 = 4u16;
    let probe = LrSelugeParams {
        version: 1,
        image_len: 1, // fixed below
        k,
        n,
        payload_len: payload.max((n as usize * 8 / k as usize) + 9),
        k0,
        n0,
        puzzle_strength: 4,
        ..LrSelugeParams::default()
    };
    let image_len = probe.page_capacity() * pages_approx - 3;
    (LrSelugeParams { image_len, ..probe }, seed)
}

/// Preprocess → disseminate over a lossy one-hop link → every node
/// reconstructs the image byte-for-byte, for arbitrary geometry.
#[test]
fn pipeline_roundtrip_arbitrary_geometry() {
    let mut rng = DetRng::seed_from_u64(0x7069_7065);
    let mut cases = 0;
    while cases < 12 {
        let (params, seed) = arbitrary_params(&mut rng);
        if params.validate().is_err() {
            continue;
        }
        cases += 1;
        let image: Vec<u8> = (0..params.image_len as u64)
            .map(|i| (i.wrapping_mul(seed | 1) >> 3) as u8)
            .collect();
        let deployment = Deployment::new(&image, params, b"prop");
        let cfg = SimConfig {
            medium: MediumConfig {
                app_loss: 0.25,
                ..MediumConfig::default()
            },
            ..SimConfig::default()
        };
        let mut sim = SimBuilder::new(Topology::star(4), seed, |id| deployment.node(id, NodeId(0)))
            .config(cfg)
            .build();
        let report = sim.run(Duration::from_secs(100_000));
        assert!(report.all_complete, "stalled: params {params:?}");
        for i in 1..4u32 {
            let got = sim.node(NodeId(i)).scheme().image();
            assert_eq!(got.as_deref(), Some(&image[..]));
        }
    }
}

fn arbitrary_fault_config(rng: &mut DetRng) -> FaultConfig {
    let reboot_after = if rng.gen_range(0u32..3) == 0 {
        None
    } else {
        let lo = rng.gen_range(1u64..4);
        Some((Duration::from_secs(lo), Duration::from_secs(lo + 4)))
    };
    FaultConfig {
        crash_rate: rng.gen_range(0u32..80) as f64 / 100.0,
        reboot_after,
        link_flap_rate: rng.gen_range(0u32..60) as f64 / 100.0,
        down_sojourn: Duration::from_secs(rng.gen_range(1u64..6)),
        up_sojourn: Duration::from_secs(rng.gen_range(2u64..12)),
        degrade_rate: rng.gen_range(0u32..50) as f64 / 100.0,
        drift_ppm: rng.gen_range(0u32..200_000),
        horizon: Duration::from_secs(rng.gen_range(5u64..30)),
        ..FaultConfig::default()
    }
}

fn arbitrary_topology(rng: &mut DetRng) -> Topology {
    match rng.gen_range(0u32..3) {
        0 => Topology::star(rng.gen_range(3usize..8)),
        1 => Topology::line(rng.gen_range(3usize..7), 1.0),
        _ => Topology::grid(3, 10.0, rng.gen_range(0u64..100)),
    }
}

/// Any generated `FaultPlan` survives a trip through its trace-event
/// (JSONL) form bit-identically, and the deserialized plan replays to
/// the exact same simulation outcome as the original.
#[test]
fn fault_plans_round_trip_and_replay_identically() {
    let mut rng = DetRng::seed_from_u64(0x7069_7065);
    let params = LrSelugeParams {
        image_len: 512,
        k: 8,
        n: 12,
        payload_len: 56,
        k0: 4,
        n0: 8,
        puzzle_strength: 4,
        ..LrSelugeParams::default()
    };
    let image: Vec<u8> = (0..512u32).map(|i| (i * 31 % 253) as u8).collect();
    for case in 0..12u64 {
        let config = arbitrary_fault_config(&mut rng);
        let topology = arbitrary_topology(&mut rng);
        let plan = FaultPlan::generate(&config, &topology, case);
        let parsed = FaultPlan::from_jsonl(&plan.to_jsonl()).expect("parseable");
        assert_eq!(plan, parsed, "case {case}: round trip changed the plan");

        // Replaying the deserialized plan must be indistinguishable
        // from the original. Run a full sim pair for a third of the
        // cases (the round trip above already covers the rest).
        if case % 3 != 0 {
            continue;
        }
        let run = |p: &FaultPlan| {
            let deployment = Deployment::new(&image, params, b"replay");
            let cfg = SimConfig {
                stall_window: Some(Duration::from_secs(300)),
                ..SimConfig::default()
            };
            let mut sim =
                SimBuilder::new(topology.clone(), case, |id| deployment.node(id, NodeId(0)))
                    .config(cfg)
                    .build();
            sim.inject_faults(p);
            let report = sim.run(Duration::from_secs(2_000));
            let progress: Vec<u64> = (0..topology.len() as u32)
                .map(|i| sim.node(NodeId(i)).progress())
                .collect();
            (
                report.outcome,
                report.all_complete,
                report.final_time,
                report.latency,
                sim.reboots(),
                progress,
            )
        };
        assert_eq!(
            run(&plan),
            run(&parsed),
            "case {case}: replay diverged from the original plan"
        );
    }
}

#[test]
fn latency_is_monotone_ish_in_loss() {
    // Averaged over seeds, more loss never makes dissemination faster by
    // a large factor (sanity: the loss process is actually wired in).
    let params = LrSelugeParams {
        image_len: 2048,
        k: 8,
        n: 12,
        payload_len: 56,
        k0: 4,
        n0: 8,
        puzzle_strength: 4,
        ..LrSelugeParams::default()
    };
    let image: Vec<u8> = (0..2048u32).map(|i| i as u8).collect();
    let mean_latency = |p: f64| -> f64 {
        let mut total = 0.0;
        let runs = 3;
        for seed in 0..runs {
            let deployment = Deployment::new(&image, params, b"mono");
            let cfg = SimConfig {
                medium: MediumConfig {
                    app_loss: p,
                    ..MediumConfig::default()
                },
                ..SimConfig::default()
            };
            let mut sim =
                SimBuilder::new(Topology::star(5), seed, |id| deployment.node(id, NodeId(0)))
                    .config(cfg)
                    .build();
            let report = sim.run(Duration::from_secs(100_000));
            assert!(report.all_complete);
            total += report.latency.expect("complete").as_secs_f64();
        }
        total / runs as f64
    };
    let low = mean_latency(0.0);
    let high = mean_latency(0.5);
    assert!(
        high > low,
        "heavy loss should slow dissemination: p=0 {low:.1}s vs p=0.5 {high:.1}s"
    );
}

//! Cross-crate property tests: the end-to-end pipeline invariants hold
//! for randomized images, parameters and loss patterns.

use lr_seluge::{Deployment, LrSelugeParams};
use lrs_netsim::medium::MediumConfig;
use lrs_netsim::node::NodeId;
use lrs_netsim::sim::{SimConfig, Simulator};
use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;
use lrs_rng::DetRng;

fn arbitrary_params(rng: &mut DetRng) -> (LrSelugeParams, u64) {
    let k = rng.gen_range(2u16..10);
    let spare = rng.gen_range(1u16..6);
    let payload = rng.gen_range(24usize..64);
    let pages_approx = rng.gen_range(1usize..4);
    let seed = rng.gen_range(0u64..1_000);
    let n = k + spare;
    let k0 = 2u16;
    let n0 = 4u16;
    let probe = LrSelugeParams {
        version: 1,
        image_len: 1, // fixed below
        k,
        n,
        payload_len: payload.max((n as usize * 8 / k as usize) + 9),
        k0,
        n0,
        puzzle_strength: 4,
        ..LrSelugeParams::default()
    };
    let image_len = probe.page_capacity() * pages_approx - 3;
    (LrSelugeParams { image_len, ..probe }, seed)
}

/// Preprocess → disseminate over a lossy one-hop link → every node
/// reconstructs the image byte-for-byte, for arbitrary geometry.
#[test]
fn pipeline_roundtrip_arbitrary_geometry() {
    let mut rng = DetRng::seed_from_u64(0x7069_7065);
    let mut cases = 0;
    while cases < 12 {
        let (params, seed) = arbitrary_params(&mut rng);
        if params.validate().is_err() {
            continue;
        }
        cases += 1;
        let image: Vec<u8> = (0..params.image_len as u64)
            .map(|i| (i.wrapping_mul(seed | 1) >> 3) as u8)
            .collect();
        let deployment = Deployment::new(&image, params, b"prop");
        let cfg = SimConfig {
            medium: MediumConfig {
                app_loss: 0.25,
                ..MediumConfig::default()
            },
        };
        let mut sim = Simulator::new(Topology::star(4), cfg, seed, |id| {
            deployment.node(id, NodeId(0))
        });
        let report = sim.run(Duration::from_secs(100_000));
        assert!(report.all_complete, "stalled: params {params:?}");
        for i in 1..4u32 {
            let got = sim.node(NodeId(i)).scheme().image();
            assert_eq!(got.as_deref(), Some(&image[..]));
        }
    }
}

#[test]
fn latency_is_monotone_ish_in_loss() {
    // Averaged over seeds, more loss never makes dissemination faster by
    // a large factor (sanity: the loss process is actually wired in).
    let params = LrSelugeParams {
        image_len: 2048,
        k: 8,
        n: 12,
        payload_len: 56,
        k0: 4,
        n0: 8,
        puzzle_strength: 4,
        ..LrSelugeParams::default()
    };
    let image: Vec<u8> = (0..2048u32).map(|i| i as u8).collect();
    let mean_latency = |p: f64| -> f64 {
        let mut total = 0.0;
        let runs = 3;
        for seed in 0..runs {
            let deployment = Deployment::new(&image, params, b"mono");
            let cfg = SimConfig {
                medium: MediumConfig {
                    app_loss: p,
                    ..MediumConfig::default()
                },
            };
            let mut sim = Simulator::new(Topology::star(5), cfg, seed, |id| {
                deployment.node(id, NodeId(0))
            });
            let report = sim.run(Duration::from_secs(100_000));
            assert!(report.all_complete);
            total += report.latency.expect("complete").as_secs_f64();
        }
        total / runs as f64
    };
    let low = mean_latency(0.0);
    let high = mean_latency(0.5);
    assert!(
        high > low,
        "heavy loss should slow dissemination: p=0 {low:.1}s vs p=0.5 {high:.1}s"
    );
}

//! Cross-scheme integration tests: LR-Seluge vs Seluge vs Deluge on the
//! same images, topologies and loss processes.

use lr_seluge::LrSelugeParams;
use lrs_bench::{average, matched_seluge_params, run_deluge, run_lr, run_seluge, RunSpec};
use lrs_deluge::image::ImageParams;

fn small_lr(image_len: usize) -> LrSelugeParams {
    // Rate 2.0: with only k = 8 blocks per page, the rate-1.5 knee sits
    // at p = 1/3 and p = 0.4 needs a second round per page; the paper's
    // k = 32 pages concentrate much better. The small test geometry
    // compensates with a higher rate.
    LrSelugeParams {
        image_len,
        k: 8,
        n: 16,
        payload_len: 56,
        k0: 4,
        n0: 8,
        puzzle_strength: 6,
        ..LrSelugeParams::default()
    }
}

#[test]
fn all_three_protocols_complete_one_hop() {
    let spec = RunSpec::one_hop(4, 0.1);
    let lr = run_lr(&spec, small_lr(2048), 1);
    assert_eq!(lr.completed, 1.0);
    let s = run_seluge(&spec, matched_seluge_params(&small_lr(2048)), 1);
    assert_eq!(s.completed, 1.0);
    let d = run_deluge(
        &spec,
        ImageParams {
            version: 1,
            image_len: 2048,
            packets_per_page: 8,
            payload_len: 56,
        },
        1,
    );
    assert_eq!(d.completed, 1.0);
}

#[test]
fn lr_beats_seluge_under_heavy_loss() {
    // The paper's headline claim. With the paper's k = 32 pages the win
    // extends to p = 0.4 (see the fig4 harness and the loss_sweep
    // example); this test's deliberately tiny k = 8 pages pay a ~29 %
    // chained-hash overhead per page, so it checks the ordering at
    // p = 0.3, where even the small geometry must win clearly.
    let lr_params = small_lr(6 * 1024);
    let s_params = matched_seluge_params(&lr_params);
    let spec = RunSpec::one_hop(10, 0.3);
    let seeds = 3;
    let m_lr = average(seeds, |seed| run_lr(&spec, lr_params, seed));
    let m_s = average(seeds, |seed| run_seluge(&spec, s_params, seed));
    assert_eq!(m_lr.completed, 1.0);
    assert_eq!(m_s.completed, 1.0);
    assert!(
        m_lr.total_bytes < m_s.total_bytes * 0.85,
        "LR {} bytes vs Seluge {} bytes",
        m_lr.total_bytes,
        m_s.total_bytes
    );
    // Latency can photo-finish at this tiny geometry; the claim is
    // "no worse", with the strict win asserted on bytes above.
    assert!(
        m_lr.latency_s < m_s.latency_s * 1.15,
        "LR {}s vs Seluge {}s",
        m_lr.latency_s,
        m_s.latency_s
    );
}

#[test]
fn seluge_competitive_when_lossless() {
    // At p = 0 the erasure redundancy buys nothing: Seluge should not
    // lose (the paper reports LR slightly worse there).
    let lr_params = small_lr(6 * 1024);
    let s_params = matched_seluge_params(&lr_params);
    let spec = RunSpec::one_hop(10, 0.0);
    let m_lr = average(2, |seed| run_lr(&spec, lr_params, seed));
    let m_s = average(2, |seed| run_seluge(&spec, s_params, seed));
    assert!(
        m_s.total_bytes <= m_lr.total_bytes * 1.15,
        "Seluge should win or tie at p=0: LR {} vs Seluge {}",
        m_lr.total_bytes,
        m_s.total_bytes
    );
}

#[test]
fn exactly_one_signature_verification_per_node() {
    let spec = RunSpec::one_hop(5, 0.2);
    let m = run_lr(&spec, small_lr(2048), 3);
    assert_eq!(m.completed, 1.0);
    // 5 receivers, one verification each; the base verifies nothing.
    assert_eq!(m.sig_verifications, 5.0);
}

#[test]
fn multi_hop_grid_both_schemes() {
    use lrs_netsim::medium::MediumConfig;
    use lrs_netsim::time::Duration;
    use lrs_netsim::topology::Topology;

    let spec = RunSpec {
        topology: Topology::grid(4, 10.0, 11),
        medium: MediumConfig::default(),
        deadline: Duration::from_secs(200_000),
        engine: Default::default(),
    };
    let lr_params = small_lr(2048);
    let m_lr = run_lr(&spec, lr_params, 5);
    assert_eq!(m_lr.completed, 1.0, "LR stalled on grid");
    let m_s = run_seluge(&spec, matched_seluge_params(&lr_params), 5);
    assert_eq!(m_s.completed, 1.0, "Seluge stalled on grid");
}

//! Whole-system adversarial tests: the contrast between insecure Deluge
//! and LR-Seluge under active attack, and the §IV-E denial-of-receipt
//! mitigation.

use lr_seluge::{Deployment, LrSelugeParams};
use lrs_crypto::cluster::ClusterKey;
use lrs_deluge::attack::{AttackKind, Attacker, MaybeAdversary};
use lrs_deluge::engine::{DisseminationNode, EngineConfig};
use lrs_deluge::image::{DelugeImage, DelugeScheme, ImageParams};
use lrs_deluge::policy::UnionPolicy;
use lrs_netsim::node::NodeId;

use lrs_netsim::time::Duration;
use lrs_netsim::topology::Topology;
use lrs_netsim::SimBuilder;

const N: usize = 5;
const IMAGE_LEN: usize = 1536;

fn image() -> Vec<u8> {
    (0..IMAGE_LEN as u32)
        .map(|i| (i * 37 % 251) as u8)
        .collect()
}

fn lr_params() -> LrSelugeParams {
    LrSelugeParams {
        image_len: IMAGE_LEN,
        k: 8,
        n: 12,
        payload_len: 56,
        k0: 4,
        n0: 8,
        puzzle_strength: 6,
        ..LrSelugeParams::default()
    }
}

#[test]
fn deluge_is_corrupted_by_bogus_data_while_lr_seluge_is_not() {
    let attacker_id = NodeId((N + 1) as u32);
    let flood = Duration::from_millis(200);

    // Deluge run.
    let ip = ImageParams {
        version: 1,
        image_len: IMAGE_LEN,
        packets_per_page: 8,
        payload_len: 56,
    };
    let dimage = DelugeImage::new(image(), ip);
    let key = ClusterKey::derive(b"adv", 0);
    let engine = EngineConfig {
        authenticate_control: false,
        ..EngineConfig::default()
    };
    let mut dsim = SimBuilder::new(Topology::star(N + 2), 3, |id| {
        if id == attacker_id {
            MaybeAdversary::Attacker(Attacker::outsider(
                AttackKind::BogusData {
                    payload_len: ip.payload_len,
                    index_space: ip.packets_per_page,
                },
                flood,
                1,
            ))
        } else {
            let scheme = if id == NodeId(0) {
                DelugeScheme::base(&dimage)
            } else {
                DelugeScheme::receiver(ip)
            };
            MaybeAdversary::Honest(DisseminationNode::new(
                scheme,
                UnionPolicy::new(),
                key.clone(),
                engine,
            ))
        }
    })
    .build();
    let _ = dsim.run(Duration::from_secs(40_000));
    let corrupted = (1..=N as u32)
        .filter(|&i| {
            let node = dsim.node(NodeId(i)).honest().expect("honest");
            node.scheme()
                .image()
                .map(|got| got != image())
                .unwrap_or(true)
        })
        .count();
    assert!(
        corrupted > 0,
        "the insecure baseline should be corrupted by the flood"
    );

    // LR-Seluge run under the identical flood.
    let deployment = Deployment::new(&image(), lr_params(), b"adv");
    let mut lsim = SimBuilder::new(Topology::star(N + 2), 3, |id| {
        if id == attacker_id {
            MaybeAdversary::Attacker(Attacker::outsider(
                AttackKind::BogusData {
                    payload_len: lr_params().payload_len,
                    index_space: lr_params().n,
                },
                flood,
                1,
            ))
        } else {
            MaybeAdversary::Honest(deployment.node(id, NodeId(0)))
        }
    })
    .build();
    let report = lsim.run(Duration::from_secs(40_000));
    assert!(report.all_complete, "LR-Seluge must complete under attack");
    for i in 1..=N as u32 {
        let node = lsim.node(NodeId(i)).honest().expect("honest");
        assert_eq!(node.scheme().image().expect("done"), image(), "node {i}");
    }
}

#[test]
fn denial_of_receipt_budget_caps_victim_transmissions() {
    let run = |budget: Option<u32>| -> (u64, u64) {
        let p = lr_params();
        let engine = EngineConfig {
            per_neighbor_item_budget: budget,
            ..EngineConfig::default()
        };
        let deployment = Deployment::new(&image(), p, b"dor").with_engine_config(engine);
        let insider_key = deployment.cluster_key().clone();
        let attacker_id = NodeId((N + 1) as u32);
        let mut sim = SimBuilder::new(Topology::star(N + 2), 9, |id| {
            if id == attacker_id {
                MaybeAdversary::Attacker(Attacker::insider(
                    AttackKind::DenialOfReceipt {
                        target: NodeId(0),
                        item: 2,
                        n_bits: p.n as usize,
                    },
                    Duration::from_millis(150),
                    p.version,
                    insider_key.clone(),
                ))
            } else {
                MaybeAdversary::Honest(deployment.node(id, NodeId(0)))
            }
        })
        .build();
        // The unbounded attack is a total DoS (the victim never escapes
        // the attacker's lowest-item requests), so measure over a fixed
        // observation window instead of waiting for completion.
        let _ = sim.run(Duration::from_secs(900));
        let base = sim.node(NodeId(0)).honest().expect("base");
        (base.stats().data_sent, base.stats().budget_rejections)
    };

    let (unbounded, rej0) = run(None);
    let (bounded, rej1) = run(Some(2 * lr_params().n as u32));
    assert_eq!(rej0, 0);
    assert!(rej1 > 0, "budget must have rejected insider SNACKs");
    assert!(
        bounded < unbounded,
        "budget must reduce the victim's transmissions: {bounded} vs {unbounded}"
    );
}

#[test]
fn insider_snack_flood_does_not_prevent_completion() {
    let p = lr_params();
    let deployment = Deployment::new(&image(), p, b"dor2").with_engine_config(EngineConfig {
        per_neighbor_item_budget: Some(3 * p.n as u32),
        ..EngineConfig::default()
    });
    let insider_key = deployment.cluster_key().clone();
    let attacker_id = NodeId((N + 1) as u32);
    let mut sim = SimBuilder::new(Topology::star(N + 2), 21, |id| {
        if id == attacker_id {
            MaybeAdversary::Attacker(Attacker::insider(
                AttackKind::DenialOfReceipt {
                    target: NodeId(0),
                    item: 2,
                    n_bits: p.n as usize,
                },
                Duration::from_millis(150),
                p.version,
                insider_key.clone(),
            ))
        } else {
            MaybeAdversary::Honest(deployment.node(id, NodeId(0)))
        }
    })
    .build();
    let report = sim.run(Duration::from_secs(40_000));
    assert!(report.all_complete);
    for i in 1..=N as u32 {
        let node = sim.node(NodeId(i)).honest().expect("honest");
        assert_eq!(node.scheme().image().expect("done"), image());
    }
}

#[test]
fn spoofed_denial_of_receipt_evades_budget_without_leap_but_not_with_it() {
    // The insider rotates forged sender ids: per-neighbor budgets keyed
    // by the (unauthenticated) source field are useless — unless SNACK
    // sources are identified with LEAP pairwise MACs (§IV-E).
    let run = |leap: bool| -> (u64, u64) {
        let p = lr_params();
        let engine = EngineConfig {
            per_neighbor_item_budget: Some(2 * p.n as u32),
            ..EngineConfig::default()
        };
        let mut deployment = Deployment::new(&image(), p, b"spoof").with_engine_config(engine);
        if leap {
            deployment = deployment.with_leap(b"initial network key");
        }
        let insider_key = deployment.cluster_key().clone();
        let attacker_id = NodeId((N + 1) as u32);
        let mut sim = SimBuilder::new(Topology::star(N + 2), 13, |id| {
            if id == attacker_id {
                MaybeAdversary::Attacker(Attacker::insider(
                    AttackKind::SpoofedDenialOfReceipt {
                        target: NodeId(0),
                        item: 2,
                        n_bits: p.n as usize,
                        spoof_pool: 64, // plenty of forged identities
                    },
                    Duration::from_millis(150),
                    p.version,
                    insider_key.clone(),
                ))
            } else {
                MaybeAdversary::Honest(deployment.node(id, NodeId(0)))
            }
        })
        .build();
        let _ = sim.run(Duration::from_secs(600));
        let base = sim.node(NodeId(0)).honest().expect("base");
        (base.stats().data_sent, base.stats().mac_rejects)
    };

    let (without_leap, _) = run(false);
    let (with_leap, leap_rejects) = run(true);
    assert!(
        leap_rejects > 0,
        "LEAP must reject the spoofed SNACKs (got {leap_rejects})"
    );
    assert!(
        with_leap * 3 < without_leap,
        "LEAP should neutralize the spoofing attack: {with_leap} vs {without_leap}"
    );
}

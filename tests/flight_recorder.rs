//! Flight-recorder end-to-end tests: capture → capsule → replay
//! bit-identity on both engines and both schemes, automatic failure
//! capsules from the watchdog, divergence bisection, and delta-debugged
//! chaos-scenario shrinking.

use lr_seluge::{Deployment, LrSelugeParams};
use lrs_bench::matched_seluge_params;
use lrs_crypto::cluster::ClusterKey;
use lrs_crypto::puzzle::{Puzzle, PuzzleKeyChain};
use lrs_crypto::schnorr::Keypair;
use lrs_deluge::engine::DisseminationNode;
use lrs_deluge::policy::UnionPolicy;
use lrs_netsim::capsule::{Capsule, EngineDigest, RunDigest, SEQUENTIAL_ENGINE, SHARDED_ENGINE};
use lrs_netsim::fault::FaultPlan;
use lrs_netsim::node::{Context, NodeId, PacketKind, Protocol, TimerId};
use lrs_netsim::replay::{
    bisect_engines, bisect_shard_counts, replay_sequential, replay_sharded, verify_replay,
};
use lrs_netsim::shrink::shrink_fault_plan;
use lrs_netsim::sim::{Outcome, SimConfig};
use lrs_netsim::time::{Duration, SimTime};
use lrs_netsim::topology::Topology;
use lrs_netsim::trace::SharedRingTrace;
use lrs_netsim::SimBuilder;
use lrs_seluge::preprocess::SelugeArtifacts;
use lrs_seluge::scheme::SelugeScheme;
use std::path::PathBuf;

fn deadline() -> Duration {
    Duration::from_secs(100_000)
}

fn small_lr(image_len: usize) -> LrSelugeParams {
    LrSelugeParams {
        image_len,
        k: 8,
        n: 16,
        payload_len: 56,
        k0: 4,
        n0: 8,
        puzzle_strength: 6,
        ..LrSelugeParams::default()
    }
}

fn test_image(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 % 251) as u8).collect()
}

/// Deployment construction is fully derived from the image bytes and
/// parameters, so a fresh instance per closure reproduces the captured
/// run exactly — the property replay relies on.
fn lr_deployment() -> Deployment {
    let image = test_image(1024);
    Deployment::new(&image, small_lr(image.len()), b"flight recorder")
}

fn unique_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lrs-flight-{}-{name}", std::process::id()))
}

/// Captures one LR-Seluge run on each engine and packages both digests
/// into a capsule — what `lrs-bench`'s `replay --capture` does.
fn lr_capsule(side: usize, seed: u64) -> Capsule {
    let topology = Topology::grid(side, 10.0, 77);
    let deployment = lr_deployment();
    let sharded = SimBuilder::new(topology.clone(), seed, |id| deployment.node(id, NodeId(0)))
        .shards(2)
        .collect_trace(true)
        .run_sharded(deadline(), |_, _| ());
    assert_eq!(sharded.report.outcome, Outcome::Complete);
    let sharded_digest = RunDigest::compute(
        &sharded.report,
        &sharded.metrics,
        &sharded.trace,
        Some(&sharded.keyed_trace),
    );
    let ring = SharedRingTrace::new(usize::MAX);
    let mut sim = SimBuilder::new(topology.clone(), seed, |id| deployment.node(id, NodeId(0)))
        .trace(ring.clone())
        .build();
    let report = sim.run(deadline());
    assert_eq!(report.outcome, Outcome::Complete);
    let sequential_digest = RunDigest::compute(&report, sim.metrics(), &ring.events(), None);
    Capsule {
        seed,
        engine: SHARDED_ENGINE.to_string(),
        shards: 2,
        deadline: deadline(),
        config: SimConfig::default(),
        topology,
        faults: FaultPlan::new(),
        scenario: vec![("scheme".to_string(), "lr-seluge".to_string())],
        digests: vec![
            EngineDigest {
                engine: SEQUENTIAL_ENGINE.to_string(),
                shards: 1,
                digest: sequential_digest,
            },
            EngineDigest {
                engine: SHARDED_ENGINE.to_string(),
                shards: 2,
                digest: sharded_digest,
            },
        ],
    }
}

#[test]
fn lr_capsule_replays_bit_identically_on_both_engines() {
    let capsule = lr_capsule(6, 42);
    // The capsule must survive a serialization round trip before the
    // replays, so what is verified is what a file would carry.
    let restored = Capsule::from_jsonl(&capsule.to_jsonl()).expect("round trip");
    assert_eq!(restored, capsule);
    let deployment = lr_deployment();
    let sequential = replay_sequential(&restored, |id| deployment.node(id, NodeId(0)));
    verify_replay(&restored, &sequential).expect("sequential replay diverged");
    for shards in [1usize, 2, 4] {
        let run = replay_sharded(&restored, shards, |id| deployment.node(id, NodeId(0)));
        verify_replay(&restored, &run)
            .unwrap_or_else(|err| panic!("sharded replay @ {shards} shards diverged: {err}"));
    }
}

#[test]
fn lr_capsule_with_faults_replays_bit_identically() {
    // Cross-shard chaos in the capture must be reproduced exactly by
    // the replay, because the capsule carries the full fault schedule.
    let mut faults = FaultPlan::new();
    faults.crash_and_reboot(NodeId(7), SimTime(400_000), Duration::from_secs(2));
    faults.crash(NodeId(34), SimTime(700_000));
    faults.link_outage(
        NodeId(35),
        NodeId(29),
        SimTime(300_000),
        Duration::from_secs(1),
    );
    let topology = Topology::grid(6, 10.0, 77);
    let deployment = lr_deployment();
    let captured = SimBuilder::new(topology.clone(), 3, |id| deployment.node(id, NodeId(0)))
        .faults(faults.clone())
        .shards(4)
        .collect_trace(true)
        .run_sharded(deadline(), |_, _| ());
    assert_eq!(captured.report.outcome, Outcome::Complete);
    let capsule = Capsule {
        seed: 3,
        engine: SHARDED_ENGINE.to_string(),
        shards: 4,
        deadline: deadline(),
        config: SimConfig::default(),
        topology,
        faults,
        scenario: Vec::new(),
        digests: vec![EngineDigest {
            engine: SHARDED_ENGINE.to_string(),
            shards: 4,
            digest: RunDigest::compute(
                &captured.report,
                &captured.metrics,
                &captured.trace,
                Some(&captured.keyed_trace),
            ),
        }],
    };
    let restored = Capsule::from_framed(&capsule.to_framed()).expect("framed round trip");
    for shards in [1usize, 2] {
        let run = replay_sharded(&restored, shards, |id| deployment.node(id, NodeId(0)));
        verify_replay(&restored, &run)
            .unwrap_or_else(|err| panic!("faulted replay @ {shards} shards diverged: {err}"));
    }
}

#[test]
fn seluge_capsule_replays_bit_identically_on_sharded_engine() {
    let image = test_image(1024);
    let params = matched_seluge_params(&small_lr(image.len()));
    let kp = Keypair::from_seed(b"flight recorder");
    let chain = PuzzleKeyChain::generate(b"flight recorder", params.version as u32 + 4);
    let artifacts = SelugeArtifacts::build(&image, params, &kp, &chain);
    let puzzle = Puzzle::new(chain.anchor(), params.puzzle_strength);
    let key = ClusterKey::derive(b"flight recorder", 0);
    let make = |id: NodeId| {
        let scheme = if id == NodeId(0) {
            SelugeScheme::base(&artifacts, kp.public(), puzzle)
        } else {
            SelugeScheme::receiver(params, kp.public(), puzzle)
        };
        DisseminationNode::new(scheme, UnionPolicy::new(), key.clone(), Default::default())
    };
    let topology = Topology::grid(6, 10.0, 77);
    let captured = SimBuilder::new(topology.clone(), 7, make)
        .shards(2)
        .collect_trace(true)
        .run_sharded(deadline(), |_, _| ());
    assert_eq!(captured.report.outcome, Outcome::Complete);
    let capsule = Capsule {
        seed: 7,
        engine: SHARDED_ENGINE.to_string(),
        shards: 2,
        deadline: deadline(),
        config: SimConfig::default(),
        topology,
        faults: FaultPlan::new(),
        scenario: vec![("scheme".to_string(), "seluge".to_string())],
        digests: vec![EngineDigest {
            engine: SHARDED_ENGINE.to_string(),
            shards: 2,
            digest: RunDigest::compute(
                &captured.report,
                &captured.metrics,
                &captured.trace,
                Some(&captured.keyed_trace),
            ),
        }],
    };
    let restored = Capsule::from_jsonl(&capsule.to_jsonl()).expect("round trip");
    for shards in [1usize, 4] {
        let run = replay_sharded(&restored, shards, make);
        verify_replay(&restored, &run)
            .unwrap_or_else(|err| panic!("seluge replay @ {shards} shards diverged: {err}"));
    }
}

/// A beacon protocol that keeps virtual time moving whether or not
/// progress happens: node 0 is the only source, every node re-arms a
/// periodic timer forever. Crashing node 0 therefore stalls the run
/// (goodput frozen, clock running) instead of draining it.
struct Beacon {
    heard: bool,
}

const TICK: TimerId = TimerId(3);

impl Protocol for Beacon {
    fn on_init(&mut self, ctx: &mut Context<'_>) {
        if ctx.id == NodeId(0) {
            self.heard = true;
        }
        ctx.set_timer(TICK, Duration::from_millis(200));
    }
    fn on_packet(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _data: &[u8]) {
        self.heard = true;
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerId) {
        if self.heard {
            ctx.broadcast(PacketKind::Data, vec![0x5A; 16]);
        }
        ctx.set_timer(TICK, Duration::from_millis(200));
    }
    fn is_complete(&self) -> bool {
        self.heard
    }
    fn progress(&self) -> u64 {
        u64::from(self.heard)
    }
}

fn beacon_config() -> SimConfig {
    SimConfig {
        max_sim_time: Some(Duration::from_secs(60)),
        stall_window: Some(Duration::from_secs(5)),
        ..SimConfig::default()
    }
}

fn beacon_outcome(faults: &FaultPlan) -> Outcome {
    let mut sim = SimBuilder::new(Topology::star(5), 9, |_| Beacon { heard: false })
        .config(beacon_config())
        .faults(faults.clone())
        .build();
    sim.run(Duration::from_secs(120)).outcome
}

#[test]
fn shrinker_reduces_failing_chaos_plan_to_minimal_reproducer() {
    // One culprit — the permanent crash of the only source — buried in
    // 40 decoy events that never prevent completion on their own.
    let mut plan = FaultPlan::new();
    for i in 0..10u32 {
        let node = NodeId(1 + (i % 4));
        let at = SimTime(200_000 + u64::from(i) * 130_000);
        plan.crash_and_reboot(node, at, Duration::from_millis(700));
        plan.link_outage(
            NodeId(1 + (i % 4)),
            NodeId(1 + ((i + 1) % 4)),
            SimTime(150_000 + u64::from(i) * 90_000),
            Duration::from_millis(400),
        );
    }
    plan.crash(NodeId(0), SimTime(100_000));
    let original = plan.len();
    assert!(original >= 41, "expected a large haystack, got {original}");
    assert_eq!(beacon_outcome(&plan), Outcome::Stalled);

    let (shrunk, stats) = shrink_fault_plan(&plan, |candidate| {
        beacon_outcome(candidate) == Outcome::Stalled
    });
    assert_eq!(
        beacon_outcome(&shrunk),
        Outcome::Stalled,
        "shrunk plan must still fail"
    );
    assert!(
        shrunk.len() * 4 <= original,
        "shrunk to {} of {original} events — expected ≤ 25%",
        shrunk.len()
    );
    assert_eq!(stats.from, original);
    assert_eq!(stats.to, shrunk.len());
    // The actual 1-minimal answer is the single crash of the source.
    assert_eq!(shrunk.len(), 1);
}

#[test]
fn stalled_sharded_run_dumps_a_loadable_capsule() {
    let path = unique_path("stall-sharded.lrsc");
    let _ = std::fs::remove_file(&path);
    let mut faults = FaultPlan::new();
    faults.crash(NodeId(0), SimTime(100_000));
    let run = SimBuilder::new(Topology::star(5), 9, |_| Beacon { heard: false })
        .config(beacon_config())
        .faults(faults)
        .shards(2)
        .collect_trace(true)
        .capsule_on_failure(&path)
        .scenario("protocol", "beacon")
        .run_sharded(Duration::from_secs(120), |_, b| b.heard);
    assert_eq!(run.report.outcome, Outcome::Stalled);

    let capsule = Capsule::load(&path).expect("failure capsule must load");
    std::fs::remove_file(&path).ok();
    assert_eq!(capsule.engine, SHARDED_ENGINE);
    assert_eq!(capsule.shards, 2);
    assert_eq!(capsule.scenario_value("protocol"), Some("beacon"));
    assert_eq!(capsule.faults.len(), 1);
    let recorded = capsule.digest_for(SHARDED_ENGINE).expect("sharded digest");
    assert_eq!(recorded.digest.outcome, "stalled");
    // The capsule must reproduce the stall bit-identically.
    let replayed = replay_sharded(&capsule, 4, |_| Beacon { heard: false });
    verify_replay(&capsule, &replayed).expect("stall replay diverged");
}

#[test]
fn stalled_sequential_run_dumps_a_loadable_capsule() {
    let path = unique_path("stall-sequential.jsonl");
    let _ = std::fs::remove_file(&path);
    let mut faults = FaultPlan::new();
    faults.crash(NodeId(0), SimTime(100_000));
    let mut sim = SimBuilder::new(Topology::star(5), 9, |_| Beacon { heard: false })
        .config(beacon_config())
        .faults(faults)
        .capsule_on_failure(&path)
        .scenario("protocol", "beacon")
        .build();
    let report = sim.run(Duration::from_secs(120));
    assert_eq!(report.outcome, Outcome::Stalled);

    let capsule = Capsule::load(&path).expect("failure capsule must load");
    std::fs::remove_file(&path).ok();
    assert_eq!(capsule.engine, SEQUENTIAL_ENGINE);
    // The sequential dump digests outcome/time/metrics only (the full
    // trace is not retained on the failure path); replay must still
    // verify against those fields.
    let replayed = replay_sequential(&capsule, |_| Beacon { heard: false });
    verify_replay(&capsule, &replayed).expect("sequential stall replay diverged");
}

#[test]
fn bisector_finds_engine_divergence_but_no_shard_divergence() {
    let capsule = lr_capsule(4, 11);
    let deployment = lr_deployment();
    // The sharded engine is shard-count independent: no divergence.
    assert!(
        bisect_shard_counts(&capsule, 1, 4, |id| deployment.node(id, NodeId(0))).is_none(),
        "shard counts must be lockstep-identical"
    );
    // The two engines intentionally order concurrent events differently;
    // the bisector pinpoints where, with context on both sides.
    let divergence = bisect_engines(&capsule, |id| deployment.node(id, NodeId(0)))
        .expect("engines are expected to diverge in event order");
    assert!(divergence.left.is_some() || divergence.right.is_some());
    let rendered = divergence.to_string();
    assert!(rendered.contains("streams diverge at event"), "{rendered}");
}

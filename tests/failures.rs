//! Crash-failure injection: dissemination must route around dead relays
//! when the topology allows it, and partitioned segments must be the
//! only casualties when it does not. Also exercises the per-node energy
//! ledger.

use lr_seluge::{Deployment, LrSelugeParams};
use lrs_netsim::energy::EnergyModel;
use lrs_netsim::node::NodeId;
use lrs_netsim::sim::{SimConfig, Simulator};
use lrs_netsim::time::{Duration, SimTime};
use lrs_netsim::topology::Topology;

fn params() -> LrSelugeParams {
    LrSelugeParams {
        image_len: 1024,
        k: 8,
        n: 12,
        payload_len: 56,
        k0: 4,
        n0: 8,
        puzzle_strength: 4,
        ..LrSelugeParams::default()
    }
}

fn image() -> Vec<u8> {
    (0..1024u32).map(|i| (i * 73 % 251) as u8).collect()
}

#[test]
fn grid_routes_around_a_dead_relay() {
    let deployment = Deployment::new(&image(), params(), b"failures");
    let mut sim = Simulator::new(Topology::grid(4, 10.0, 21), SimConfig::default(), 4, |id| {
        deployment.node(id, NodeId(0))
    });
    // Kill an interior relay shortly after dissemination starts.
    sim.schedule_failure(NodeId(5), SimTime(2_000_000));
    let report = sim.run(Duration::from_secs(36_000));
    assert!(
        report.all_complete,
        "grid should route around the dead node"
    );
    assert!(sim.is_failed(NodeId(5)));
    for i in 1..16u32 {
        if i == 5 {
            continue;
        }
        assert_eq!(
            sim.node(NodeId(i)).scheme().image().as_deref(),
            Some(&image()[..]),
            "node {i}"
        );
    }
}

#[test]
fn line_partition_stops_at_the_dead_node() {
    let deployment = Deployment::new(&image(), params(), b"failures");
    let mut sim = Simulator::new(Topology::line(6, 1.0), SimConfig::default(), 9, |id| {
        deployment.node(id, NodeId(0))
    });
    // Node 3 dies immediately: nodes 4 and 5 are partitioned from the base.
    sim.schedule_failure(NodeId(3), SimTime(1));
    let report = sim.run(Duration::from_secs(2_000));
    assert!(!report.all_complete, "partitioned nodes cannot complete");
    // Upstream of the failure everything completes...
    for i in [1u32, 2] {
        assert_eq!(
            sim.node(NodeId(i)).scheme().image().as_deref(),
            Some(&image()[..]),
            "node {i} upstream of the partition"
        );
    }
    // ...downstream nothing does.
    for i in [4u32, 5] {
        assert_eq!(sim.node(NodeId(i)).scheme().image(), None, "node {i}");
    }
}

#[test]
fn energy_ledger_tracks_radio_work() {
    let deployment = Deployment::new(&image(), params(), b"energy");
    let mut sim = Simulator::new(Topology::star(5), SimConfig::default(), 2, |id| {
        deployment.node(id, NodeId(0))
    });
    let report = sim.run(Duration::from_secs(36_000));
    assert!(report.all_complete);
    let model = EnergyModel::default();
    // The base station transmits the bulk of the bytes: it must be the
    // energy hotspot.
    let (hotspot, joules) = sim.energy().max_joules(&model);
    assert_eq!(hotspot, NodeId(0));
    assert!(joules > 0.0);
    // Every receiver paid reception energy.
    for i in 1..5u32 {
        assert!(sim.energy().rx_bytes(NodeId(i)) > 0, "node {i}");
        assert!(sim.energy().joules(NodeId(i), &model) > 0.0);
    }
    // Conservation-ish: total receive bytes cannot exceed
    // tx bytes × (#nodes − 1) on a fully connected star.
    let total_tx: u64 = (0..5u32).map(|i| sim.energy().tx_bytes(NodeId(i))).sum();
    let total_rx: u64 = (0..5u32).map(|i| sim.energy().rx_bytes(NodeId(i))).sum();
    assert!(total_rx <= total_tx * 4);
    assert!(total_rx > 0);
}

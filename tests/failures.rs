//! Crash-failure injection: dissemination must route around dead relays
//! when the topology allows it, and partitioned segments must be the
//! only casualties when it does not. Crash→reboot cycles must resume
//! from flash without re-downloading completed pages. Also exercises
//! the per-node energy ledger.

use lr_seluge::{Deployment, LrSelugeParams};
use lrs_crypto::cluster::ClusterKey;
use lrs_crypto::puzzle::{Puzzle, PuzzleKeyChain};
use lrs_crypto::schnorr::Keypair;
use lrs_deluge::engine::{DisseminationNode, EngineConfig, Scheme as _};
use lrs_deluge::policy::UnionPolicy;
use lrs_netsim::energy::EnergyModel;
use lrs_netsim::node::NodeId;
use lrs_netsim::sim::Simulator;

use lrs_netsim::time::{Duration, SimTime};
use lrs_netsim::topology::Topology;
use lrs_netsim::trace::{SharedRingTrace, TraceEvent};
use lrs_netsim::SimBuilder;
use lrs_seluge::{SelugeArtifacts, SelugeScheme};

fn params() -> LrSelugeParams {
    LrSelugeParams {
        image_len: 1024,
        k: 8,
        n: 12,
        payload_len: 56,
        k0: 4,
        n0: 8,
        puzzle_strength: 4,
        ..LrSelugeParams::default()
    }
}

fn image() -> Vec<u8> {
    (0..1024u32).map(|i| (i * 73 % 251) as u8).collect()
}

#[test]
fn grid_routes_around_a_dead_relay() {
    let deployment = Deployment::new(&image(), params(), b"failures");
    let mut sim = SimBuilder::new(Topology::grid(4, 10.0, 21), 4, |id| {
        deployment.node(id, NodeId(0))
    })
    .build();
    // Kill an interior relay shortly after dissemination starts.
    sim.schedule_failure(NodeId(5), SimTime(2_000_000));
    let report = sim.run(Duration::from_secs(36_000));
    assert!(
        report.all_complete,
        "grid should route around the dead node"
    );
    assert!(sim.is_failed(NodeId(5)));
    for i in 1..16u32 {
        if i == 5 {
            continue;
        }
        assert_eq!(
            sim.node(NodeId(i)).scheme().image().as_deref(),
            Some(&image()[..]),
            "node {i}"
        );
    }
}

#[test]
fn line_partition_stops_at_the_dead_node() {
    let deployment = Deployment::new(&image(), params(), b"failures");
    let mut sim = SimBuilder::new(Topology::line(6, 1.0), 9, |id| {
        deployment.node(id, NodeId(0))
    })
    .build();
    // Node 3 dies immediately: nodes 4 and 5 are partitioned from the base.
    sim.schedule_failure(NodeId(3), SimTime(1));
    let report = sim.run(Duration::from_secs(2_000));
    assert!(!report.all_complete, "partitioned nodes cannot complete");
    // Upstream of the failure everything completes...
    for i in [1u32, 2] {
        assert_eq!(
            sim.node(NodeId(i)).scheme().image().as_deref(),
            Some(&image()[..]),
            "node {i} upstream of the partition"
        );
    }
    // ...downstream nothing does.
    for i in [4u32, 5] {
        assert_eq!(sim.node(NodeId(i)).scheme().image(), None, "node {i}");
    }
}

/// Levels at which `node` announced a completed item, in emission order.
/// Flash recovery shows up here as a strictly increasing sequence: a
/// node that lost its completed pages would re-announce old levels.
fn completion_levels(trace: &SharedRingTrace, node: NodeId) -> Vec<u64> {
    trace
        .events()
        .iter()
        .filter_map(|ev| match *ev {
            TraceEvent::Note {
                node: n,
                label: "page_complete",
                a,
                ..
            } if n == node => Some(a),
            _ => None,
        })
        .collect()
}

fn assert_strictly_increasing(levels: &[u64]) {
    assert!(
        levels.windows(2).all(|w| w[0] < w[1]),
        "levels repeated after reboot (completed pages re-downloaded): {levels:?}"
    );
}

/// Crash an LR-Seluge receiver mid-page (signature, M0 and page 0 in
/// flash, a partial page in RAM) and reboot it. It must finish without
/// re-decoding any completed item and without re-verifying the
/// signature.
#[test]
fn lr_reboot_mid_page_resumes_from_flash() {
    let deployment = Deployment::new(&image(), params(), b"failures");
    let trace = SharedRingTrace::new(100_000);
    let mut sim =
        SimBuilder::new(Topology::star(3), 11, |id| deployment.node(id, NodeId(0))).build();
    sim.set_trace(Box::new(trace.clone()));
    // At 1.3s (seed 11) the receiver holds three completed items.
    sim.schedule_failure(NodeId(2), SimTime(1_300_000));
    sim.schedule_reboot(NodeId(2), SimTime(2_000_000));
    let report = sim.run(Duration::from_secs(36_000));
    assert!(report.all_complete, "rebooted node should still finish");
    assert_eq!(sim.reboots(), 1);
    let scheme = sim.node(NodeId(2)).scheme();
    assert_eq!(scheme.image().as_deref(), Some(&image()[..]));
    let items = u64::from(scheme.num_items());
    let cost = scheme.cost();
    assert_eq!(
        cost.decodes,
        items - 1,
        "every item except the signature decodes exactly once"
    );
    assert_eq!(cost.signature_verifications, 1);
    let levels = completion_levels(&trace, NodeId(2));
    assert!(levels.len() as u64 == items, "levels: {levels:?}");
    assert_strictly_increasing(&levels);
}

/// Crash an LR-Seluge receiver while it is still collecting M0 (only
/// the verified signature is in flash). The reboot drops the partial
/// hash page but must not force a second signature download.
#[test]
fn lr_reboot_during_m0_keeps_the_signature() {
    let deployment = Deployment::new(&image(), params(), b"failures");
    let trace = SharedRingTrace::new(100_000);
    let mut sim =
        SimBuilder::new(Topology::star(3), 11, |id| deployment.node(id, NodeId(0))).build();
    sim.set_trace(Box::new(trace.clone()));
    // At 0.4s (seed 11) the receiver has the signature but not M0.
    sim.schedule_failure(NodeId(2), SimTime(400_000));
    sim.schedule_reboot(NodeId(2), SimTime(1_200_000));
    let report = sim.run(Duration::from_secs(36_000));
    assert!(report.all_complete);
    assert_eq!(sim.reboots(), 1);
    let scheme = sim.node(NodeId(2)).scheme();
    assert_eq!(scheme.image().as_deref(), Some(&image()[..]));
    assert_eq!(
        scheme.cost().signature_verifications,
        1,
        "the flash-held signature must not be re-verified after reboot"
    );
    assert_eq!(scheme.cost().decodes, u64::from(scheme.num_items()) - 1);
    assert_strictly_increasing(&completion_levels(&trace, NodeId(2)));
}

type SelugeNode = DisseminationNode<SelugeScheme, UnionPolicy>;

fn seluge_sim(trace: &SharedRingTrace) -> (Simulator<SelugeNode>, Vec<u8>) {
    let sp = lrs_bench::runner::matched_seluge_params(&params());
    let image = image();
    let kp = Keypair::from_seed(b"failures keys");
    let chain = PuzzleKeyChain::generate(b"failures keys", sp.version as u32 + 4);
    let artifacts = SelugeArtifacts::build(&image, sp, &kp, &chain);
    let puzzle = Puzzle::new(chain.anchor(), sp.puzzle_strength);
    let key = ClusterKey::derive(b"failures keys", 0);
    let mut sim = SimBuilder::new(Topology::star(3), 11, |id| {
        let scheme = if id == NodeId(0) {
            SelugeScheme::base(&artifacts, kp.public(), puzzle)
        } else {
            SelugeScheme::receiver(sp, kp.public(), puzzle)
        };
        DisseminationNode::new(
            scheme,
            UnionPolicy::new(),
            key.clone(),
            EngineConfig::default(),
        )
    })
    .build();
    sim.set_trace(Box::new(trace.clone()));
    (sim, image)
}

/// The Seluge baseline persists whole received pages to flash too: a
/// mid-page crash→reboot loses only the partial page.
#[test]
fn seluge_reboot_mid_page_resumes_from_flash() {
    let trace = SharedRingTrace::new(100_000);
    let (mut sim, image) = seluge_sim(&trace);
    sim.schedule_failure(NodeId(2), SimTime(1_300_000));
    sim.schedule_reboot(NodeId(2), SimTime(2_000_000));
    let report = sim.run(Duration::from_secs(36_000));
    assert!(report.all_complete);
    assert_eq!(sim.reboots(), 1);
    let scheme = sim.node(NodeId(2)).scheme();
    assert_eq!(scheme.image().as_deref(), Some(&image[..]));
    assert_eq!(scheme.cost().signature_verifications, 1);
    let levels = completion_levels(&trace, NodeId(2));
    assert!(levels.len() as u64 == u64::from(scheme.num_items()));
    assert_strictly_increasing(&levels);
}

/// Seluge treats a partially received hash page as RAM: a crash during
/// M0 re-collects it from scratch but keeps the verified signature.
#[test]
fn seluge_reboot_during_m0_keeps_the_signature() {
    let trace = SharedRingTrace::new(100_000);
    let (mut sim, image) = seluge_sim(&trace);
    sim.schedule_failure(NodeId(2), SimTime(400_000));
    sim.schedule_reboot(NodeId(2), SimTime(1_200_000));
    let report = sim.run(Duration::from_secs(36_000));
    assert!(report.all_complete);
    assert_eq!(sim.reboots(), 1);
    let scheme = sim.node(NodeId(2)).scheme();
    assert_eq!(scheme.image().as_deref(), Some(&image[..]));
    assert_eq!(scheme.cost().signature_verifications, 1);
    assert_strictly_increasing(&completion_levels(&trace, NodeId(2)));
}

#[test]
fn energy_ledger_tracks_radio_work() {
    let deployment = Deployment::new(&image(), params(), b"energy");
    let mut sim =
        SimBuilder::new(Topology::star(5), 2, |id| deployment.node(id, NodeId(0))).build();
    let report = sim.run(Duration::from_secs(36_000));
    assert!(report.all_complete);
    let model = EnergyModel::default();
    // The base station transmits the bulk of the bytes: it must be the
    // energy hotspot.
    let (hotspot, joules) = sim.energy().max_joules(&model);
    assert_eq!(hotspot, NodeId(0));
    assert!(joules > 0.0);
    // Every receiver paid reception energy.
    for i in 1..5u32 {
        assert!(sim.energy().rx_bytes(NodeId(i)) > 0, "node {i}");
        assert!(sim.energy().joules(NodeId(i), &model) > 0.0);
    }
    // Conservation-ish: total receive bytes cannot exceed
    // tx bytes × (#nodes − 1) on a fully connected star.
    let total_tx: u64 = (0..5u32).map(|i| sim.energy().tx_bytes(NodeId(i))).sum();
    let total_rx: u64 = (0..5u32).map(|i| sim.energy().rx_bytes(NodeId(i))).sum();
    assert!(total_rx <= total_tx * 4);
    assert!(total_rx > 0);
}
